//! Exact 0/1 branch-and-bound with LP bounding.
//!
//! Depth-first search over variable fixings. Each node substitutes the
//! fixed variables into the constraints and solves the LP relaxation of
//! the residual problem for a lower bound; integral LP solutions become
//! incumbents. When every objective coefficient is integral the bound is
//! tightened by rounding (`⌈bound⌉ ≥ incumbent ⟹ prune`).
//!
//! Two properties matter for the paper reproduction:
//!
//! - **Opaque optimum selection** (§5.2.2): ties between optima are broken
//!   by a *seeded* branching order, so different seeds surface different
//!   optimal solutions — just like swapping Gurobi for CPLEX.
//! - **Timeouts**: a node budget models the paper's 30-minute ILP wall;
//!   exhausting it returns [`IlpOutcome::Budget`] with the best incumbent
//!   (possibly none).

use crate::lp::{solve_lp, LpOutcome};
use crate::model::{Constraint, IlpProblem, Sense};
use rain_linalg::RainRng;

/// Branch-and-bound configuration.
#[derive(Debug, Clone)]
pub struct BbConfig {
    /// Maximum number of explored nodes before giving up.
    pub node_budget: usize,
    /// Seed for branching-order randomization (the "which optimum does the
    /// solver pick" knob).
    pub seed: u64,
}

impl Default for BbConfig {
    fn default() -> Self {
        BbConfig {
            node_budget: 200_000,
            seed: 0,
        }
    }
}

/// An integral solution.
#[derive(Debug, Clone, PartialEq)]
pub struct IlpSolution {
    /// Variable assignment.
    pub x: Vec<bool>,
    /// Objective value.
    pub objective: f64,
    /// Nodes explored to find it.
    pub nodes: usize,
}

/// Solver outcome.
#[derive(Debug, Clone, PartialEq)]
pub enum IlpOutcome {
    /// Proven optimal solution.
    Optimal(IlpSolution),
    /// Proven infeasible.
    Infeasible,
    /// Node budget exhausted (the paper's "did not finish within 30
    /// minutes"); carries the best incumbent if any was found.
    Budget(Option<IlpSolution>),
}

impl IlpOutcome {
    /// The solution, if the solver produced one (optimal or incumbent).
    pub fn solution(&self) -> Option<&IlpSolution> {
        match self {
            IlpOutcome::Optimal(s) => Some(s),
            IlpOutcome::Budget(s) => s.as_ref(),
            IlpOutcome::Infeasible => None,
        }
    }
}

/// Solve a 0/1 program exactly (within the node budget).
pub fn solve_ilp(p: &IlpProblem, cfg: &BbConfig) -> IlpOutcome {
    let n = p.n_vars();
    let integral_obj = p.objective.iter().all(|c| (c - c.round()).abs() < 1e-9);
    let mut rng = RainRng::seed_from_u64(cfg.seed);
    // Randomized variable priority for tie-breaking between optima.
    let mut priority: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.below(i + 1);
        priority.swap(i, j);
    }
    // Seeded tie-breaking between optima: when the objective is integral,
    // perturb it by a total of < 0.5 so the perturbed optimum is still a
    // true optimum, but *which* optimum wins depends on the seed — the
    // "solver opaquely picks one solution" behaviour of §5.2.2.
    let work_obj: Vec<f64> = if integral_obj && n > 0 {
        let eps = 0.4 / n as f64;
        p.objective
            .iter()
            .map(|c| c + rng.uniform_range(0.0, eps))
            .collect()
    } else {
        p.objective.clone()
    };

    let mut best: Option<IlpSolution> = None;
    let mut best_perturbed = f64::INFINITY;
    let mut nodes = 0usize;
    // DFS stack of partial fixings.
    let mut stack: Vec<Vec<Option<bool>>> = vec![vec![None; n]];

    while let Some(fixed) = stack.pop() {
        if nodes >= cfg.node_budget {
            return IlpOutcome::Budget(best);
        }
        nodes += 1;

        // Substitute fixings into the problem.
        let free: Vec<usize> = (0..n).filter(|&i| fixed[i].is_none()).collect();
        let index_of: std::collections::HashMap<usize, usize> =
            free.iter().enumerate().map(|(k, &i)| (i, k)).collect();
        let mut fixed_cost = 0.0;
        for i in 0..n {
            if fixed[i] == Some(true) {
                fixed_cost += work_obj[i];
            }
        }
        let sub_obj: Vec<f64> = free.iter().map(|&i| work_obj[i]).collect();
        let mut sub_cons = Vec::with_capacity(p.constraints.len());
        let mut infeasible = false;
        for c in &p.constraints {
            let mut rhs = c.rhs;
            let mut terms = Vec::new();
            for &(i, a) in &c.terms {
                match fixed[i] {
                    Some(true) => rhs -= a,
                    Some(false) => {}
                    None => terms.push((index_of[&i], a)),
                }
            }
            if terms.is_empty() {
                let ok = match c.sense {
                    Sense::Le => 0.0 <= rhs + 1e-9,
                    Sense::Eq => rhs.abs() <= 1e-9,
                    Sense::Ge => 0.0 >= rhs - 1e-9,
                };
                if !ok {
                    infeasible = true;
                    break;
                }
            } else {
                sub_cons.push(Constraint::new(terms, c.sense, rhs));
            }
        }
        if infeasible {
            continue;
        }

        match solve_lp(&sub_obj, &sub_cons) {
            LpOutcome::Infeasible => continue,
            LpOutcome::IterationLimit => {
                // No usable bound: branch without pruning.
                branch(&fixed, &free, None, &priority, &mut rng, &mut stack);
            }
            LpOutcome::Optimal { x, objective } => {
                let bound = objective + fixed_cost;
                if bound >= best_perturbed - 1e-9 {
                    continue;
                }
                // Integral LP solution → incumbent.
                let frac = x.iter().position(|v| {
                    v.fract().min(1.0 - v.fract()) > 1e-6 || (*v - v.round()).abs() > 1e-6
                });
                match frac {
                    None => {
                        let mut full = vec![false; n];
                        for i in 0..n {
                            match fixed[i] {
                                Some(b) => full[i] = b,
                                None => full[i] = x[index_of[&i]] > 0.5,
                            }
                        }
                        let as_f64: Vec<f64> = full.iter().map(|&b| b as u8 as f64).collect();
                        debug_assert!(p.feasible(&as_f64, 1e-6));
                        let perturbed: f64 = work_obj.iter().zip(&as_f64).map(|(c, v)| c * v).sum();
                        if perturbed < best_perturbed - 1e-9 {
                            best_perturbed = perturbed;
                            best = Some(IlpSolution {
                                x: full,
                                objective: p.objective_value(&as_f64),
                                nodes,
                            });
                        }
                    }
                    Some(_) => {
                        // Branch on the highest-priority fractional var.
                        let lp_of = |i: usize| x[index_of[&i]];
                        branch(&fixed, &free, Some(&lp_of), &priority, &mut rng, &mut stack);
                    }
                }
            }
        }
    }
    match best {
        Some(s) => IlpOutcome::Optimal(s),
        None => IlpOutcome::Infeasible,
    }
}

/// Push the two children of a node, branching on the best candidate
/// variable; child order (try-1-first vs try-0-first) is randomized.
fn branch(
    fixed: &[Option<bool>],
    free: &[usize],
    lp_value: Option<&dyn Fn(usize) -> f64>,
    priority: &[usize],
    rng: &mut RainRng,
    stack: &mut Vec<Vec<Option<bool>>>,
) {
    // Prefer fractional variables (if LP values known), then priority.
    let var = free
        .iter()
        .copied()
        .filter(|&i| {
            lp_value.is_none_or(|f| {
                let v = f(i);
                (v - v.round()).abs() > 1e-6
            })
        })
        .min_by_key(|&i| priority[i])
        .or_else(|| free.iter().copied().min_by_key(|&i| priority[i]));
    let Some(var) = var else { return };
    let first = rng.bernoulli(0.5);
    for &val in &[first, !first] {
        let mut child = fixed.to_vec();
        child[var] = Some(val);
        stack.push(child);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Constraint, IlpProblem, Sense};

    /// Brute-force optimum for cross-checking (n ≤ 20).
    fn brute(p: &IlpProblem) -> Option<f64> {
        let n = p.n_vars();
        let mut best: Option<f64> = None;
        for bits in 0..(1u32 << n) {
            let x: Vec<f64> = (0..n).map(|i| ((bits >> i) & 1) as f64).collect();
            if p.feasible(&x, 1e-9) {
                let obj = p.objective_value(&x);
                if best.is_none_or(|b| obj < b) {
                    best = Some(obj);
                }
            }
        }
        best
    }

    #[test]
    fn cardinality_flip_problem() {
        // The Tiresias COUNT encoding: r = [1,1,0,0,0], complaint Σt = 4.
        // Minimal repair flips two 0s → objective 2.
        let mut p = IlpProblem::new();
        let r = [true, true, false, false, false];
        for &ri in &r {
            // Cost of deviating from the current prediction.
            p.add_var(if ri { -1.0 } else { 1.0 });
        }
        // objective Σ |t - r| = const + Σ cost·t; add constant 2 offset.
        p.add_constraint(Constraint::new(
            (0..5).map(|i| (i, 1.0)).collect(),
            Sense::Eq,
            4.0,
        ));
        let out = solve_ilp(&p, &BbConfig::default());
        let sol = match out {
            IlpOutcome::Optimal(s) => s,
            other => panic!("unexpected {other:?}"),
        };
        // Optimal keeps both existing 1s (objective -2 + 2 new = 0).
        assert_eq!(sol.x.iter().filter(|&&b| b).count(), 4);
        assert!(sol.x[0] && sol.x[1]);
    }

    #[test]
    fn matches_brute_force_on_random_instances() {
        let mut rng = RainRng::seed_from_u64(9);
        for trial in 0..25 {
            let n = 2 + (trial % 7);
            let mut p = IlpProblem::new();
            for _ in 0..n {
                p.add_var(rng.int_range(-3, 4) as f64);
            }
            for _ in 0..(1 + rng.below(3)) {
                let mut terms: Vec<(usize, f64)> = Vec::new();
                for i in 0..n {
                    if rng.bernoulli(0.7) {
                        terms.push((i, rng.int_range(-2, 3) as f64));
                    }
                }
                if terms.is_empty() {
                    continue;
                }
                let sense = match rng.below(3) {
                    0 => Sense::Le,
                    1 => Sense::Ge,
                    _ => Sense::Eq,
                };
                let rhs = rng.int_range(-2, 4) as f64;
                p.add_constraint(Constraint::new(terms, sense, rhs));
            }
            let expected = brute(&p);
            let out = solve_ilp(
                &p,
                &BbConfig {
                    seed: trial as u64,
                    ..Default::default()
                },
            );
            match (expected, out) {
                (None, IlpOutcome::Infeasible) => {}
                (Some(e), IlpOutcome::Optimal(s)) => {
                    assert!(
                        (e - s.objective).abs() < 1e-6,
                        "trial {trial}: brute {e} vs bb {}",
                        s.objective
                    );
                }
                (e, o) => panic!("trial {trial}: brute {e:?} vs bb {o:?}"),
            }
        }
    }

    #[test]
    fn different_seeds_can_pick_different_optima() {
        // Σ t = 1 over 6 identical vars: 6 optimal solutions.
        let mut p = IlpProblem::new();
        for _ in 0..6 {
            p.add_var(1.0);
        }
        p.add_constraint(Constraint::new(
            (0..6).map(|i| (i, 1.0)).collect(),
            Sense::Eq,
            1.0,
        ));
        let mut picks = std::collections::HashSet::new();
        for seed in 0..20 {
            let out = solve_ilp(
                &p,
                &BbConfig {
                    seed,
                    ..Default::default()
                },
            );
            let sol = out.solution().expect("feasible").clone();
            picks.insert(sol.x.iter().position(|&b| b).unwrap());
        }
        assert!(picks.len() > 1, "seeded solver always picked {picks:?}");
    }

    #[test]
    fn infeasible_problem() {
        let mut p = IlpProblem::new();
        p.add_var(1.0);
        p.add_constraint(Constraint::new(vec![(0, 1.0)], Sense::Ge, 2.0));
        assert_eq!(solve_ilp(&p, &BbConfig::default()), IlpOutcome::Infeasible);
    }

    #[test]
    fn node_budget_reports_exhaustion() {
        // A problem needing branching, with budget 1 → Budget outcome.
        let mut p = IlpProblem::new();
        for _ in 0..10 {
            p.add_var(-1.0);
        }
        p.add_constraint(Constraint::new(
            (0..10)
                .map(|i| (i, if i % 2 == 0 { 2.0 } else { 3.0 }))
                .collect(),
            Sense::Le,
            7.0,
        ));
        let out = solve_ilp(
            &p,
            &BbConfig {
                node_budget: 1,
                seed: 0,
            },
        );
        assert!(matches!(out, IlpOutcome::Budget(_)));
    }

    #[test]
    fn pairwise_disequality_system() {
        // Join-complaint shape: three pairs (l,r) must not both be 1;
        // minimize deviation from all-1. Optimal: flip the shared var.
        // Vars: l0 shared in two pairs with r0, r1; plus pair (l1, r2).
        let mut p = IlpProblem::new();
        for _ in 0..5 {
            p.add_var(-1.0); // currently all 1; keeping 1 is rewarded
        }
        // pairs: (0,1), (0,2), (3,4): t_a + t_b ≤ 1.
        for (a, b) in [(0, 1), (0, 2), (3, 4)] {
            p.add_constraint(Constraint::new(vec![(a, 1.0), (b, 1.0)], Sense::Le, 1.0));
        }
        let out = solve_ilp(&p, &BbConfig::default());
        let sol = out.solution().unwrap();
        // Optimum keeps 3 ones: {r0, r1, one of pair 3}.
        assert_eq!(sol.objective, -3.0);
        assert!(!sol.x[0], "shared variable must be flipped");
    }
}
