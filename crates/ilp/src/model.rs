//! ILP problem representation.
//!
//! All variables are binary (0/1) — exactly what Tiresias-style encodings
//! of prediction repairs need. Constraints are sparse linear rows with a
//! comparison [`Sense`]; the objective is minimized.

/// Constraint sense.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sense {
    /// `Σ aᵢxᵢ ≤ b`.
    Le,
    /// `Σ aᵢxᵢ = b`.
    Eq,
    /// `Σ aᵢxᵢ ≥ b`.
    Ge,
}

/// One sparse linear constraint.
#[derive(Debug, Clone, PartialEq)]
pub struct Constraint {
    /// `(variable index, coefficient)` pairs.
    pub terms: Vec<(usize, f64)>,
    /// Comparison sense.
    pub sense: Sense,
    /// Right-hand side.
    pub rhs: f64,
}

impl Constraint {
    /// Build a constraint.
    pub fn new(terms: Vec<(usize, f64)>, sense: Sense, rhs: f64) -> Self {
        Constraint { terms, sense, rhs }
    }

    /// Evaluate the left-hand side on an assignment.
    pub fn lhs(&self, x: &[f64]) -> f64 {
        self.terms.iter().map(|&(i, a)| a * x[i]).sum()
    }

    /// True when the assignment satisfies the constraint within `tol`.
    pub fn satisfied(&self, x: &[f64], tol: f64) -> bool {
        let lhs = self.lhs(x);
        match self.sense {
            Sense::Le => lhs <= self.rhs + tol,
            Sense::Eq => (lhs - self.rhs).abs() <= tol,
            Sense::Ge => lhs >= self.rhs - tol,
        }
    }
}

/// A 0/1 integer program: minimize `cᵀx` subject to linear constraints,
/// `x ∈ {0,1}ⁿ`.
#[derive(Debug, Clone, Default)]
pub struct IlpProblem {
    /// Objective coefficients (one per variable).
    pub objective: Vec<f64>,
    /// Constraint rows.
    pub constraints: Vec<Constraint>,
}

impl IlpProblem {
    /// Empty problem.
    pub fn new() -> Self {
        IlpProblem::default()
    }

    /// Add a variable with the given objective coefficient; returns its
    /// index.
    pub fn add_var(&mut self, cost: f64) -> usize {
        self.objective.push(cost);
        self.objective.len() - 1
    }

    /// Number of variables.
    pub fn n_vars(&self) -> usize {
        self.objective.len()
    }

    /// Add a constraint.
    pub fn add_constraint(&mut self, c: Constraint) {
        for &(i, _) in &c.terms {
            assert!(
                i < self.n_vars(),
                "constraint references unknown variable {i}"
            );
        }
        self.constraints.push(c);
    }

    /// Objective value of an assignment.
    pub fn objective_value(&self, x: &[f64]) -> f64 {
        self.objective.iter().zip(x).map(|(c, v)| c * v).sum()
    }

    /// True when a 0/1 assignment satisfies every constraint.
    pub fn feasible(&self, x: &[f64], tol: f64) -> bool {
        self.constraints.iter().all(|c| c.satisfied(x, tol))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_evaluate() {
        let mut p = IlpProblem::new();
        let a = p.add_var(1.0);
        let b = p.add_var(2.0);
        p.add_constraint(Constraint::new(vec![(a, 1.0), (b, 1.0)], Sense::Ge, 1.0));
        assert_eq!(p.n_vars(), 2);
        assert!(p.feasible(&[1.0, 0.0], 1e-9));
        assert!(!p.feasible(&[0.0, 0.0], 1e-9));
        assert_eq!(p.objective_value(&[1.0, 1.0]), 3.0);
    }

    #[test]
    fn senses() {
        let c = Constraint::new(vec![(0, 2.0)], Sense::Le, 1.0);
        assert!(c.satisfied(&[0.0], 1e-9));
        assert!(!c.satisfied(&[1.0], 1e-9));
        let c = Constraint::new(vec![(0, 1.0)], Sense::Eq, 1.0);
        assert!(c.satisfied(&[1.0], 1e-9));
        assert!(!c.satisfied(&[0.0], 1e-9));
    }

    #[test]
    #[should_panic(expected = "unknown variable")]
    fn constraints_are_validated() {
        let mut p = IlpProblem::new();
        p.add_constraint(Constraint::new(vec![(3, 1.0)], Sense::Le, 1.0));
    }
}
