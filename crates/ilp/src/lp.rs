//! Dense two-phase primal simplex over the unit box.
//!
//! Solves `min cᵀx  s.t.  Ax {≤,=,≥} b,  0 ≤ x ≤ 1` — the LP relaxation of
//! a 0/1 program. Upper bounds are materialized as explicit `xᵢ ≤ 1` rows
//! (instance sizes on the generic ILP path are kept small by TwoStep's
//! presolve, so the dense tableau is the simple and adequate choice).
//! Bland's rule guarantees termination; an iteration cap guards against
//! pathological pivoting in floating point.

use crate::model::{Constraint, Sense};

/// Result of an LP solve.
#[derive(Debug, Clone, PartialEq)]
pub enum LpOutcome {
    /// Optimal solution found.
    Optimal {
        /// Optimal point (length = number of variables).
        x: Vec<f64>,
        /// Optimal objective value.
        objective: f64,
    },
    /// No feasible point exists.
    Infeasible,
    /// The pivot cap was hit before convergence (callers must treat the
    /// bound as unknown).
    IterationLimit,
}

const EPS: f64 = 1e-9;
const MAX_PIVOTS: usize = 20_000;

/// Solve `min cᵀx` over the unit box with the given constraints.
pub fn solve_lp(objective: &[f64], constraints: &[Constraint]) -> LpOutcome {
    let n = objective.len();
    if n == 0 {
        return LpOutcome::Optimal {
            x: Vec::new(),
            objective: 0.0,
        };
    }

    // Assemble rows: user constraints plus xᵢ ≤ 1 bounds.
    struct Row {
        coeffs: Vec<f64>,
        sense: Sense,
        rhs: f64,
    }
    let mut rows: Vec<Row> = Vec::with_capacity(constraints.len() + n);
    for c in constraints {
        let mut coeffs = vec![0.0; n];
        for &(i, a) in &c.terms {
            coeffs[i] += a;
        }
        rows.push(Row {
            coeffs,
            sense: c.sense,
            rhs: c.rhs,
        });
    }
    for i in 0..n {
        let mut coeffs = vec![0.0; n];
        coeffs[i] = 1.0;
        rows.push(Row {
            coeffs,
            sense: Sense::Le,
            rhs: 1.0,
        });
    }

    // Normalize to rhs ≥ 0.
    for r in &mut rows {
        if r.rhs < 0.0 {
            for a in &mut r.coeffs {
                *a = -*a;
            }
            r.rhs = -r.rhs;
            r.sense = match r.sense {
                Sense::Le => Sense::Ge,
                Sense::Eq => Sense::Eq,
                Sense::Ge => Sense::Le,
            };
        }
    }

    let m = rows.len();
    // Columns: structural | slacks/surplus | artificials. Count first.
    let mut n_slack = 0;
    let mut n_art = 0;
    for r in &rows {
        match r.sense {
            Sense::Le => n_slack += 1,
            Sense::Ge => {
                n_slack += 1;
                n_art += 1;
            }
            Sense::Eq => n_art += 1,
        }
    }
    let total = n + n_slack + n_art;
    // Tableau: m rows × (total + 1); last column is the rhs.
    let mut t = vec![vec![0.0; total + 1]; m];
    let mut basis = vec![usize::MAX; m];
    let mut art_cols = Vec::with_capacity(n_art);
    let mut next_slack = n;
    let mut next_art = n + n_slack;
    for (ri, r) in rows.iter().enumerate() {
        t[ri][..n].copy_from_slice(&r.coeffs);
        t[ri][total] = r.rhs;
        match r.sense {
            Sense::Le => {
                t[ri][next_slack] = 1.0;
                basis[ri] = next_slack;
                next_slack += 1;
            }
            Sense::Ge => {
                t[ri][next_slack] = -1.0;
                next_slack += 1;
                t[ri][next_art] = 1.0;
                basis[ri] = next_art;
                art_cols.push(next_art);
                next_art += 1;
            }
            Sense::Eq => {
                t[ri][next_art] = 1.0;
                basis[ri] = next_art;
                art_cols.push(next_art);
                next_art += 1;
            }
        }
    }

    // Phase 1: minimize the sum of artificials.
    if n_art > 0 {
        let mut cost1 = vec![0.0; total];
        for &c in &art_cols {
            cost1[c] = 1.0;
        }
        match run_simplex(&mut t, &mut basis, &cost1, total) {
            SimplexEnd::Optimal(obj) => {
                if obj > 1e-7 {
                    return LpOutcome::Infeasible;
                }
            }
            SimplexEnd::Unbounded => unreachable!("phase-1 objective is bounded below by 0"),
            SimplexEnd::IterationLimit => return LpOutcome::IterationLimit,
        }
        // Drive any artificial still in the basis out (degenerate rows).
        for ri in 0..m {
            if art_cols.contains(&basis[ri]) {
                // Find a non-artificial column with a nonzero entry.
                if let Some(col) = (0..n + n_slack).find(|&c| t[ri][c].abs() > EPS) {
                    pivot(&mut t, &mut basis, ri, col, total);
                }
                // If none exists the row is all-zero (redundant); the
                // artificial stays basic at value 0 and is harmless.
            }
        }
    }

    // Phase 2: original objective, artificial columns forbidden.
    let mut cost2 = vec![0.0; total];
    cost2[..n].copy_from_slice(objective);
    let forbidden: std::collections::HashSet<usize> = art_cols.into_iter().collect();
    // Zero out artificial columns so they can never re-enter.
    for row in t.iter_mut() {
        for &c in &forbidden {
            row[c] = 0.0;
        }
    }
    match run_simplex(&mut t, &mut basis, &cost2, total) {
        SimplexEnd::Optimal(_) => {}
        // The unit box is compact, so the LP cannot be unbounded; treat a
        // report of unboundedness as numerical failure.
        SimplexEnd::Unbounded => return LpOutcome::IterationLimit,
        SimplexEnd::IterationLimit => return LpOutcome::IterationLimit,
    }

    let mut x = vec![0.0; n];
    for (ri, &b) in basis.iter().enumerate() {
        if b < n {
            x[b] = t[ri][total].clamp(0.0, 1.0);
        }
    }
    let objective_val = objective.iter().zip(&x).map(|(c, v)| c * v).sum();
    LpOutcome::Optimal {
        x,
        objective: objective_val,
    }
}

enum SimplexEnd {
    Optimal(f64),
    Unbounded,
    IterationLimit,
}

/// Run simplex iterations on the tableau until optimality. Returns the
/// objective value of the final basis.
fn run_simplex(t: &mut [Vec<f64>], basis: &mut [usize], cost: &[f64], total: usize) -> SimplexEnd {
    let m = t.len();
    for _ in 0..MAX_PIVOTS {
        // Reduced costs: r_j = c_j − c_Bᵀ B⁻¹ A_j, computed from the
        // tableau (which already stores B⁻¹A).
        let mut entering = None;
        for j in 0..total {
            let mut rj = cost[j];
            for ri in 0..m {
                let cb = cost[basis[ri]];
                if cb != 0.0 {
                    rj -= cb * t[ri][j];
                }
            }
            if rj < -EPS {
                entering = Some(j); // Bland: first (lowest) index
                break;
            }
        }
        let Some(col) = entering else {
            let mut obj = 0.0;
            for ri in 0..m {
                obj += cost[basis[ri]] * t[ri][total];
            }
            return SimplexEnd::Optimal(obj);
        };
        // Ratio test (Bland tie-break on the leaving basis index).
        let mut leave: Option<(usize, f64)> = None;
        for ri in 0..m {
            if t[ri][col] > EPS {
                let ratio = t[ri][total] / t[ri][col];
                match leave {
                    None => leave = Some((ri, ratio)),
                    Some((best_ri, best)) => {
                        if ratio < best - EPS || (ratio < best + EPS && basis[ri] < basis[best_ri])
                        {
                            leave = Some((ri, ratio));
                        }
                    }
                }
            }
        }
        let Some((row, _)) = leave else {
            return SimplexEnd::Unbounded;
        };
        pivot(t, basis, row, col, total);
    }
    SimplexEnd::IterationLimit
}

fn pivot(t: &mut [Vec<f64>], basis: &mut [usize], row: usize, col: usize, _total: usize) {
    let p = t[row][col];
    debug_assert!(p.abs() > EPS, "pivot on ~zero element");
    for v in t[row].iter_mut() {
        *v /= p;
    }
    // Split the borrow so the pivot row can be read while others mutate.
    let (before, rest) = t.split_at_mut(row);
    let (pivot_row, after) = rest.split_first_mut().expect("pivot row exists");
    for r in before.iter_mut().chain(after.iter_mut()) {
        let f = r[col];
        if f != 0.0 {
            for (v, pv) in r.iter_mut().zip(pivot_row.iter()) {
                *v -= f * pv;
            }
        }
    }
    basis[row] = col;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Constraint, Sense};

    fn optimal(out: LpOutcome) -> (Vec<f64>, f64) {
        match out {
            LpOutcome::Optimal { x, objective } => (x, objective),
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn unconstrained_box_minimum() {
        // min x0 - x1 over the box → x0=0, x1=1.
        let (x, obj) = optimal(solve_lp(&[1.0, -1.0], &[]));
        assert!((x[0] - 0.0).abs() < 1e-7);
        assert!((x[1] - 1.0).abs() < 1e-7);
        assert!((obj + 1.0).abs() < 1e-7);
    }

    #[test]
    fn equality_constraint() {
        // min x0 + 2 x1 s.t. x0 + x1 = 1 → x0=1, x1=0, obj 1.
        let c = vec![Constraint::new(vec![(0, 1.0), (1, 1.0)], Sense::Eq, 1.0)];
        let (x, obj) = optimal(solve_lp(&[1.0, 2.0], &c));
        assert!((x[0] - 1.0).abs() < 1e-7, "{x:?}");
        assert!((obj - 1.0).abs() < 1e-7);
    }

    #[test]
    fn ge_constraint_forces_mass() {
        // min Σ x s.t. Σ x ≥ 2.5 over 4 vars → obj 2.5.
        let c = vec![Constraint::new(
            (0..4).map(|i| (i, 1.0)).collect(),
            Sense::Ge,
            2.5,
        )];
        let (_, obj) = optimal(solve_lp(&[1.0; 4], &c));
        assert!((obj - 2.5).abs() < 1e-7);
    }

    #[test]
    fn infeasible_detected() {
        // x0 ≥ 2 is outside the unit box.
        let c = vec![Constraint::new(vec![(0, 1.0)], Sense::Ge, 2.0)];
        assert_eq!(solve_lp(&[1.0], &c), LpOutcome::Infeasible);
        // Contradictory equalities.
        let c = vec![
            Constraint::new(vec![(0, 1.0)], Sense::Eq, 0.0),
            Constraint::new(vec![(0, 1.0)], Sense::Eq, 1.0),
        ];
        assert_eq!(solve_lp(&[1.0], &c), LpOutcome::Infeasible);
    }

    #[test]
    fn negative_rhs_is_normalized() {
        // -x0 ≤ -0.5 ⇔ x0 ≥ 0.5.
        let c = vec![Constraint::new(vec![(0, -1.0)], Sense::Le, -0.5)];
        let (x, _) = optimal(solve_lp(&[1.0], &c));
        assert!((x[0] - 0.5).abs() < 1e-7);
    }

    #[test]
    fn fractional_lp_solution() {
        // min -(x0 + x1) s.t. 2x0 + x1 ≤ 1.5 → x0=0.25,x1=1 (LP vertex).
        let c = vec![Constraint::new(vec![(0, 2.0), (1, 1.0)], Sense::Le, 1.5)];
        let (x, obj) = optimal(solve_lp(&[-1.0, -1.0], &c));
        assert!((obj + 1.25).abs() < 1e-7, "obj {obj} x {x:?}");
    }

    #[test]
    fn redundant_equalities_are_handled() {
        // Duplicate equality rows leave an artificial basic at zero.
        let c = vec![
            Constraint::new(vec![(0, 1.0), (1, 1.0)], Sense::Eq, 1.0),
            Constraint::new(vec![(0, 1.0), (1, 1.0)], Sense::Eq, 1.0),
        ];
        let (x, obj) = optimal(solve_lp(&[1.0, 3.0], &c));
        assert!((x[0] - 1.0).abs() < 1e-7);
        assert!((obj - 1.0).abs() < 1e-7);
    }

    #[test]
    fn degenerate_cardinality_lp_is_integral_at_vertices() {
        // min number of flips: min Σ(1-x_i over S) s.t. Σ x_i = k has an
        // integral optimum (the constraint matrix is totally unimodular).
        let n = 6;
        let c = vec![Constraint::new(
            (0..n).map(|i| (i, 1.0)).collect(),
            Sense::Eq,
            4.0,
        )];
        // Cost: flipping vars 0..3 is free (they're already 1), others cost 1.
        let mut cost = vec![0.0; n];
        for t in cost.iter_mut().skip(3) {
            *t = 1.0;
        }
        let (x, obj) = optimal(solve_lp(&cost, &c));
        assert!((obj - 1.0).abs() < 1e-7, "x {x:?}");
    }

    #[test]
    fn zero_variables() {
        assert_eq!(
            solve_lp(&[], &[]),
            LpOutcome::Optimal {
                x: vec![],
                objective: 0.0
            }
        );
    }
}
