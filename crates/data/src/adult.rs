//! Adult ("Census Income")-style workload (§6.1.2, §6.5).
//!
//! Following the preprocessing of Calmon et al. \[16\] that the paper
//! borrows, each record keeps only three attributes — age decade,
//! education level, and gender — one-hot encoded into **18 binary
//! features** (6 + 10 + 2). The label predicts >$50K income.
//!
//! The crucial emergent property: with only 120 possible feature vectors,
//! a few-thousand-record training set contains enormous duplication
//! (the paper reports 118 unique points among 6512), which §6.5 shows
//! defeats ranking methods that propose duplicates over and over.
//!
//! The §6.5 corruption predicate — low income ∧ male ∧ age 40–50 — matches
//! ≈8% of training records here, as in the paper.

use rain_linalg::{stats::sigmoid, Matrix, RainRng};
use rain_model::Dataset;
use rain_sql::table::{Column, Table};

/// Number of age-decade buckets (20s through 70s).
pub const N_AGE: usize = 6;
/// Number of education levels.
pub const N_EDU: usize = 10;
/// One-hot feature dimensionality: 6 age + 10 education + 2 gender.
pub const N_FEATURES: usize = N_AGE + N_EDU + 2;

/// One decoded census record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdultRecord {
    /// Age-decade bucket `0..6` (20s..70s).
    pub age_bucket: usize,
    /// Education level `0..10`.
    pub education: usize,
    /// True for male.
    pub male: bool,
}

impl AdultRecord {
    /// The age decade in years (20, 30, ... 70).
    pub fn age_decade(&self) -> i64 {
        (self.age_bucket as i64 + 2) * 10
    }

    /// One-hot encode into the 18 binary features.
    pub fn features(&self) -> Vec<f64> {
        let mut x = vec![0.0; N_FEATURES];
        x[self.age_bucket] = 1.0;
        x[N_AGE + self.education] = 1.0;
        x[N_AGE + N_EDU + self.male as usize] = 1.0;
        x
    }
}

/// Configuration for the Adult workload generator.
#[derive(Debug, Clone)]
pub struct AdultConfig {
    /// Training records.
    pub n_train: usize,
    /// Queried records.
    pub n_query: usize,
}

impl Default for AdultConfig {
    fn default() -> Self {
        AdultConfig {
            n_train: 4000,
            n_query: 2000,
        }
    }
}

impl AdultConfig {
    /// A small configuration for unit tests.
    pub fn small() -> Self {
        AdultConfig {
            n_train: 500,
            n_query: 250,
        }
    }

    /// Generate the workload deterministically from a seed.
    pub fn generate(&self, seed: u64) -> AdultWorkload {
        let mut rng = RainRng::seed_from_u64(seed);
        let (train, train_recs) = gen(self.n_train, &mut rng.derive(1));
        let (query, query_recs) = gen(self.n_query, &mut rng.derive(2));
        AdultWorkload {
            train,
            query,
            train_records: train_recs,
            query_records: query_recs,
        }
    }
}

/// The generated census workload.
#[derive(Debug, Clone)]
pub struct AdultWorkload {
    /// Training set (label 1 = income > $50K).
    pub train: Dataset,
    /// Queried set.
    pub query: Dataset,
    /// Decoded attributes per training record (aligned with `train`).
    pub train_records: Vec<AdultRecord>,
    /// Decoded attributes per queried record (aligned with `query`).
    pub query_records: Vec<AdultRecord>,
}

impl AdultWorkload {
    /// The queried relation with `gender` and `agedecade` columns for the
    /// paper's Q6/Q7 GROUP BY queries.
    pub fn query_table(&self) -> Table {
        let gender = Column::Str(
            self.query_records
                .iter()
                .map(|r| {
                    if r.male {
                        "male".to_string()
                    } else {
                        "female".to_string()
                    }
                })
                .collect(),
        );
        let age = Column::Int(self.query_records.iter().map(|r| r.age_decade()).collect());
        crate::tables::dataset_to_table(&self.query, vec![("gender", gender), ("agedecade", age)])
    }

    /// The §6.5 corruption predicate over training rows: low income ∧
    /// male ∧ 40–50 years old.
    pub fn corruption_predicate(&self) -> impl Fn(usize, &[f64], usize) -> bool + '_ {
        move |id, _x, y| {
            let rec = &self.train_records[id];
            y == 0 && rec.male && rec.age_decade() == 40
        }
    }

    /// Ground-truth average label of query records matching a predicate
    /// over decoded attributes (for building AVG complaints).
    pub fn true_avg_where(&self, pred: impl Fn(&AdultRecord) -> bool) -> f64 {
        let mut sum = 0.0;
        let mut n = 0usize;
        for (i, rec) in self.query_records.iter().enumerate() {
            if pred(rec) {
                sum += self.query.y(i) as f64;
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }
}

fn gen(n: usize, rng: &mut RainRng) -> (Dataset, Vec<AdultRecord>) {
    let mut rows = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    let mut recs = Vec::with_capacity(n);
    for _ in 0..n {
        let rec = AdultRecord {
            age_bucket: rng.weighted_index(&[0.22, 0.26, 0.22, 0.16, 0.09, 0.05]),
            education: rng
                .weighted_index(&[0.04, 0.07, 0.22, 0.14, 0.06, 0.18, 0.12, 0.09, 0.05, 0.03]),
            male: rng.bernoulli(0.67),
        };
        // Income model: education dominates, middle age peaks, men earn
        // more (the dataset's well-known bias), plus noise.
        let age_effect = [-1.1f64, 0.0, 0.6, 0.8, 0.4, -0.2][rec.age_bucket];
        let edu_effect = rec.education as f64 * 0.38 - 1.9;
        let gender_effect = if rec.male { 0.55 } else { -0.55 };
        let logit = -0.8 + age_effect + edu_effect + gender_effect;
        let label = rng.bernoulli(sigmoid(logit)) as usize;
        rows.push(rec.features());
        labels.push(label);
        recs.push(rec);
    }
    let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
    (Dataset::new(Matrix::from_rows(&refs), labels, 2), recs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn features_are_one_hot() {
        let rec = AdultRecord {
            age_bucket: 2,
            education: 5,
            male: true,
        };
        let x = rec.features();
        assert_eq!(x.len(), N_FEATURES);
        assert_eq!(x.iter().sum::<f64>(), 3.0);
        assert_eq!(x[2], 1.0);
        assert_eq!(x[N_AGE + 5], 1.0);
        assert_eq!(x[N_AGE + N_EDU + 1], 1.0);
    }

    #[test]
    fn massive_duplication_as_in_paper() {
        let w = AdultConfig::default().generate(1);
        let unique: HashSet<Vec<u64>> = (0..w.train.len())
            .map(|i| w.train.x(i).iter().map(|v| v.to_bits()).collect())
            .collect();
        // At most 120 possible combinations; a 4000-record set must be
        // dominated by duplicates (paper: 118 unique / 6512).
        assert!(unique.len() <= 120, "{} unique", unique.len());
        assert!(unique.len() >= 60, "{} unique", unique.len());
    }

    #[test]
    fn corruption_predicate_rate_near_paper() {
        // Paper: 8.2% of the training set matches the predicate.
        let w = AdultConfig::default().generate(2);
        let pred = w.corruption_predicate();
        let matches = w.train.positions_where(|id, x, y| pred(id, x, y)).len();
        let rate = matches as f64 / w.train.len() as f64;
        assert!((rate - 0.082).abs() < 0.035, "rate {rate}");
    }

    #[test]
    fn gender_income_gap_exists() {
        let w = AdultConfig::default().generate(3);
        let male_avg = w.true_avg_where(|r| r.male);
        let female_avg = w.true_avg_where(|r| !r.male);
        assert!(male_avg > female_avg, "{male_avg} vs {female_avg}");
    }

    #[test]
    fn selectivity_asymmetry_of_section_6_5() {
        // §6.5: gender is less selective than age — few males are 40-50,
        // but most 40-50-year-olds are male.
        let w = AdultConfig::default().generate(4);
        let males = w.train_records.iter().filter(|r| r.male).count() as f64;
        let m40 = w
            .train_records
            .iter()
            .filter(|r| r.male && r.age_decade() == 40)
            .count() as f64;
        let all40 = w
            .train_records
            .iter()
            .filter(|r| r.age_decade() == 40)
            .count() as f64;
        assert!(m40 / males < 0.35, "male∧40 / male = {}", m40 / males);
        assert!(m40 / all40 > 0.55, "male∧40 / 40 = {}", m40 / all40);
    }

    #[test]
    fn query_table_columns() {
        let w = AdultConfig::small().generate(5);
        let t = w.query_table();
        assert!(t.schema().index_of("gender").is_some());
        assert!(t.schema().index_of("agedecade").is_some());
        assert_eq!(t.n_rows(), 250);
    }
}
