//! MNIST-style digit workload: procedurally rendered glyphs (§6.1.2,
//! §6.3, appendix D).
//!
//! Each image is a 14×14 grayscale grid. Digits are drawn as thick
//! seven-segment strokes with per-image jitter (translation, stroke
//! intensity) plus Gaussian pixel noise, giving a 10-class problem that a
//! softmax regression separates about as well as it separates MNIST —
//! which is all the experiments need (see DESIGN.md's substitution table;
//! 14×14 instead of 28×28 keeps the O(n·d·C) influence math fast).
//!
//! The workload helpers mirror §6.3's setups: subsets by digit for the
//! join relations, 1→7 label corruption, and the "mix rate" relation
//! shuffling of the third join experiment.

use rain_linalg::{Matrix, RainRng};
use rain_model::Dataset;
use rain_sql::table::Table;

/// Image side length.
pub const SIDE: usize = 14;
/// Feature dimensionality (`SIDE²` pixels).
pub const N_PIXELS: usize = SIDE * SIDE;
/// Number of classes.
pub const N_CLASSES: usize = 10;

/// Seven-segment membership per digit (segments A,B,C,D,E,F,G).
const SEGMENTS: [[bool; 7]; 10] = [
    // A      B      C      D      E      F      G
    [true, true, true, true, true, true, false],     // 0
    [false, true, true, false, false, false, false], // 1
    [true, true, false, true, true, false, true],    // 2
    [true, true, true, true, false, false, true],    // 3
    [false, true, true, false, false, true, true],   // 4
    [true, false, true, true, false, true, true],    // 5
    [true, false, true, true, true, true, true],     // 6
    [true, true, true, false, false, false, false],  // 7
    [true, true, true, true, true, true, true],      // 8
    [true, true, true, true, false, true, true],     // 9
];

/// Render one digit glyph into a `N_PIXELS` vector.
pub fn render_digit(digit: usize, rng: &mut RainRng) -> Vec<f64> {
    assert!(digit < 10, "digit out of range");
    let mut img = vec![0.0; N_PIXELS];
    // Per-image jitter.
    let dx = rng.below(3) as isize - 1;
    let dy = rng.below(3) as isize - 1;
    let intensity = rng.uniform_range(0.7, 1.0);
    // Segment geometry on the 14×14 grid (x = col, y = row).
    // Horizontal segments span x 4..=9; verticals span 2 rows of length 4.
    let mut stroke = |x0: isize, y0: isize, w: isize, h: isize| {
        for y in y0..y0 + h {
            for x in x0..x0 + w {
                let (xx, yy) = (x + dx, y + dy);
                if (0..SIDE as isize).contains(&xx) && (0..SIDE as isize).contains(&yy) {
                    img[yy as usize * SIDE + xx as usize] = intensity;
                }
            }
        }
    };
    let segs = SEGMENTS[digit];
    if segs[0] {
        stroke(4, 1, 6, 2); // A: top bar
    }
    if segs[1] {
        stroke(9, 2, 2, 5); // B: top-right
    }
    if segs[2] {
        stroke(9, 7, 2, 5); // C: bottom-right
    }
    if segs[3] {
        stroke(4, 11, 6, 2); // D: bottom bar
    }
    if segs[4] {
        stroke(3, 7, 2, 5); // E: bottom-left
    }
    if segs[5] {
        stroke(3, 2, 2, 5); // F: top-left
    }
    if segs[6] {
        stroke(4, 6, 6, 2); // G: middle bar
    }
    // Pixel noise.
    for p in img.iter_mut() {
        *p = (*p + rng.normal() * 0.12).clamp(0.0, 1.0);
    }
    img
}

/// Configuration for the digits workload generator.
#[derive(Debug, Clone)]
pub struct DigitsConfig {
    /// Training images.
    pub n_train: usize,
    /// Queried images.
    pub n_query: usize,
}

impl Default for DigitsConfig {
    fn default() -> Self {
        DigitsConfig {
            n_train: 2000,
            n_query: 1000,
        }
    }
}

impl DigitsConfig {
    /// A small configuration for unit tests.
    pub fn small() -> Self {
        DigitsConfig {
            n_train: 400,
            n_query: 200,
        }
    }

    /// Generate the workload deterministically from a seed.
    pub fn generate(&self, seed: u64) -> DigitsWorkload {
        let mut rng = RainRng::seed_from_u64(seed);
        let train = gen(self.n_train, &mut rng.derive(1));
        let query = gen(self.n_query, &mut rng.derive(2));
        DigitsWorkload { train, query }
    }
}

/// The generated digit workload.
#[derive(Debug, Clone)]
pub struct DigitsWorkload {
    /// Training images with ground-truth digit labels.
    pub train: Dataset,
    /// Queried images with ground-truth digit labels.
    pub query: Dataset,
}

impl DigitsWorkload {
    /// Query-set row positions whose ground-truth digit is in `digits`.
    pub fn query_rows_with_digits(&self, digits: &[usize]) -> Vec<usize> {
        self.query.positions_where(|_, _, y| digits.contains(&y))
    }

    /// A featured relation of query images whose ground truth is in
    /// `digits`, capped at `limit` rows.
    pub fn query_table_for(&self, digits: &[usize], limit: usize) -> Table {
        let mut rows = self.query_rows_with_digits(digits);
        rows.truncate(limit);
        crate::tables::dataset_to_table(&self.query.select(&rows), Vec::new())
    }

    /// The §6.3 "mix rate" relations: left gets digits `left_digits`,
    /// right gets `right_digits`, then `mix` of the left rows whose digit
    /// is `moved_digit` are *moved* to the right relation.
    pub fn mixed_tables(
        &self,
        left_digits: &[usize],
        right_digits: &[usize],
        moved_digit: usize,
        mix: f64,
        limit_each: usize,
        seed: u64,
    ) -> (Table, Table) {
        let mut left = self.query_rows_with_digits(left_digits);
        left.truncate(limit_each);
        let mut right = self.query_rows_with_digits(right_digits);
        right.truncate(limit_each);
        let movable: Vec<usize> = left
            .iter()
            .copied()
            .filter(|&r| self.query.y(r) == moved_digit)
            .collect();
        let mut rng = RainRng::seed_from_u64(seed);
        let k = (movable.len() as f64 * mix).round() as usize;
        let chosen: std::collections::HashSet<usize> = rng
            .sample_indices(movable.len(), k.min(movable.len()))
            .into_iter()
            .map(|i| movable[i])
            .collect();
        let new_left: Vec<usize> = left
            .iter()
            .copied()
            .filter(|r| !chosen.contains(r))
            .collect();
        let mut new_right = right;
        new_right.extend(chosen.iter().copied());
        new_right.sort_unstable();
        (
            crate::tables::dataset_to_table(&self.query.select(&new_left), Vec::new()),
            crate::tables::dataset_to_table(&self.query.select(&new_right), Vec::new()),
        )
    }
}

fn gen(n: usize, rng: &mut RainRng) -> Dataset {
    let mut rows = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        let digit = rng.below(N_CLASSES);
        rows.push(render_digit(digit, rng));
        labels.push(digit);
    }
    let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
    Dataset::new(Matrix::from_rows(&refs), labels, N_CLASSES)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rain_model::{accuracy, train_lbfgs, LbfgsConfig, SoftmaxRegression};

    #[test]
    fn renderer_produces_valid_images() {
        let mut rng = RainRng::seed_from_u64(1);
        for d in 0..10 {
            let img = render_digit(d, &mut rng);
            assert_eq!(img.len(), N_PIXELS);
            assert!(img.iter().all(|&p| (0.0..=1.0).contains(&p)));
            // Strokes must light up a meaningful number of pixels.
            let lit = img.iter().filter(|&&p| p > 0.5).count();
            assert!(lit > 10, "digit {d} has only {lit} lit pixels");
        }
    }

    #[test]
    fn distinct_digits_have_distinct_mean_images() {
        let mut rng = RainRng::seed_from_u64(2);
        let mean = |d: usize, rng: &mut RainRng| -> Vec<f64> {
            let mut acc = vec![0.0; N_PIXELS];
            for _ in 0..20 {
                let img = render_digit(d, rng);
                for (a, p) in acc.iter_mut().zip(&img) {
                    *a += p / 20.0;
                }
            }
            acc
        };
        let m1 = mean(1, &mut rng);
        let m7 = mean(7, &mut rng);
        let m8 = mean(8, &mut rng);
        let dist =
            |a: &[f64], b: &[f64]| rain_linalg::vecops::norm2(&rain_linalg::vecops::sub(a, b));
        // 7 = 1 + top bar: closer to 1 than 8 is.
        assert!(dist(&m1, &m7) < dist(&m1, &m8));
        assert!(dist(&m1, &m7) > 1.0, "digits 1 and 7 must still differ");
    }

    #[test]
    fn softmax_learns_digits_like_mnist() {
        let w = DigitsConfig::small().generate(3);
        let mut m = SoftmaxRegression::new(N_PIXELS, N_CLASSES, 0.005);
        train_lbfgs(
            &mut m,
            &w.train,
            &LbfgsConfig {
                max_iters: 120,
                ..Default::default()
            },
        );
        let acc = accuracy(&m, &w.query);
        assert!(acc > 0.9, "query accuracy {acc} (MNIST-with-LR is ≈0.92)");
    }

    #[test]
    fn digit_subsets_and_limits() {
        let w = DigitsConfig::small().generate(4);
        let t = w.query_table_for(&[1, 2], 30);
        assert!(t.n_rows() <= 30);
        let rows = w.query_rows_with_digits(&[1, 2]);
        assert!(rows.iter().all(|&r| [1, 2].contains(&w.query.y(r))));
    }

    #[test]
    fn mix_moves_rows_between_relations() {
        let w = DigitsConfig::small().generate(5);
        let (l0, r0) = w.mixed_tables(&[1, 2, 3], &[7, 8, 9], 1, 0.0, 100, 9);
        let (l25, r25) = w.mixed_tables(&[1, 2, 3], &[7, 8, 9], 1, 0.25, 100, 9);
        assert!(l25.n_rows() < l0.n_rows());
        assert_eq!(l0.n_rows() + r0.n_rows(), l25.n_rows() + r25.n_rows());
    }

    #[test]
    fn determinism() {
        let a = DigitsConfig::small().generate(6);
        let b = DigitsConfig::small().generate(6);
        assert_eq!(a.train.labels(), b.train.labels());
        assert_eq!(a.train.features().as_slice(), b.train.features().as_slice());
    }
}
