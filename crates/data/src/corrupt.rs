//! Systematic training-label corruption (paper §6.1.3).
//!
//! The paper generates systematic errors by choosing records that match a
//! predicate and flipping the labels of a subset of them. Both operations
//! here return the *ground-truth corrupted ids*, which the evaluation
//! metrics (recall@k, AUCCR) score against.

use rain_linalg::RainRng;
use rain_model::Dataset;

/// Flip the labels of a random `frac` of the records matching `pred` to
/// `new_label(old_label)`. Returns the ids of records whose label actually
/// changed, sorted ascending.
pub fn flip_labels_where<P, F>(
    data: &mut Dataset,
    mut pred: P,
    frac: f64,
    new_label: F,
    seed: u64,
) -> Vec<usize>
where
    P: FnMut(usize, &[f64], usize) -> bool,
    F: Fn(usize) -> usize,
{
    assert!((0.0..=1.0).contains(&frac), "frac must be in [0,1]");
    let candidates = data.positions_where(|id, x, y| pred(id, x, y));
    let mut rng = RainRng::seed_from_u64(seed);
    let k = (candidates.len() as f64 * frac).round() as usize;
    let chosen = rng.sample_indices(candidates.len(), k.min(candidates.len()));
    let mut flipped = Vec::with_capacity(chosen.len());
    for ci in chosen {
        let row = candidates[ci];
        let old = data.y(row);
        let new = new_label(old);
        if new != old {
            data.set_label(row, new);
            flipped.push(data.id(row));
        }
    }
    flipped.sort_unstable();
    flipped
}

/// Deterministically set the label of *every* record matching `pred` to
/// `label` (rule-based corruption, like the Enron "label everything
/// containing 'http' as spam" rule). Returns ids whose label changed.
pub fn relabel_where<P>(data: &mut Dataset, mut pred: P, label: usize) -> Vec<usize>
where
    P: FnMut(usize, &[f64], usize) -> bool,
{
    let candidates = data.positions_where(|id, x, y| pred(id, x, y));
    let mut changed = Vec::new();
    for row in candidates {
        if data.y(row) != label {
            data.set_label(row, label);
            changed.push(data.id(row));
        }
    }
    changed.sort_unstable();
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use rain_linalg::Matrix;

    fn toy(n: usize) -> Dataset {
        let rows: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64]).collect();
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let labels = (0..n).map(|i| (i % 2 == 0) as usize).collect();
        Dataset::new(Matrix::from_rows(&refs), labels, 2)
    }

    #[test]
    fn flips_requested_fraction() {
        let mut d = toy(100);
        // 50 even-indexed records have label 1; flip 40% of them.
        let flipped = flip_labels_where(&mut d, |_, _, y| y == 1, 0.4, |_| 0, 7);
        assert_eq!(flipped.len(), 20);
        for &id in &flipped {
            let row = d.positions_where(|i, _, _| i == id)[0];
            assert_eq!(d.y(row), 0);
        }
    }

    #[test]
    fn flipping_is_deterministic_in_seed() {
        let mut a = toy(60);
        let mut b = toy(60);
        let fa = flip_labels_where(&mut a, |_, _, y| y == 1, 0.5, |_| 0, 3);
        let fb = flip_labels_where(&mut b, |_, _, y| y == 1, 0.5, |_| 0, 3);
        assert_eq!(fa, fb);
        let fc = flip_labels_where(&mut toy(60), |_, _, y| y == 1, 0.5, |_| 0, 4);
        assert_ne!(fa, fc);
    }

    #[test]
    fn relabel_reports_only_changes() {
        let mut d = toy(10);
        // Set everything to 1; only the 5 odd records change.
        let changed = relabel_where(&mut d, |_, _, _| true, 1);
        assert_eq!(changed.len(), 5);
        assert!(d.labels().iter().all(|&y| y == 1));
    }

    #[test]
    fn zero_fraction_flips_nothing() {
        let mut d = toy(20);
        let flipped = flip_labels_where(&mut d, |_, _, _| true, 0.0, |y| 1 - y, 1);
        assert!(flipped.is_empty());
    }

    #[test]
    fn predicate_can_use_features() {
        let mut d = toy(20);
        let flipped = flip_labels_where(&mut d, |_, x, _| x[0] < 5.0, 1.0, |y| 1 - y, 1);
        assert_eq!(flipped.len(), 5); // ids 0..4, all flipped
        assert_eq!(flipped, vec![0, 1, 2, 3, 4]);
    }
}
