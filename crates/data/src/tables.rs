//! Bridging datasets into the SQL layer.

use rain_model::Dataset;
use rain_sql::table::{ColType, Column, Schema, Table};

/// Build a featured [`Table`] from a dataset: an `id` column (the stable
/// record ids) plus any extra columns, with the dataset's feature matrix
/// attached so `predict()` works over it.
///
/// # Panics
/// Panics if an extra column's length differs from the dataset's.
pub fn dataset_to_table(ds: &Dataset, extra: Vec<(&str, Column)>) -> Table {
    let mut schema = Schema::new(&[("id", ColType::Int)]);
    for (name, col) in &extra {
        assert_eq!(col.len(), ds.len(), "extra column {name} length mismatch");
        schema.push(name, col.ty());
    }
    let mut columns = vec![Column::Int(ds.ids().iter().map(|&i| i as i64).collect())];
    columns.extend(extra.into_iter().map(|(_, c)| c));
    Table::from_columns(schema, columns).with_features(ds.features().clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rain_linalg::Matrix;

    #[test]
    fn builds_featured_table() {
        let ds = Dataset::new(
            Matrix::from_rows(&[&[0.5, 1.0], &[1.5, 2.0]]),
            vec![0, 1],
            2,
        );
        let t = dataset_to_table(
            &ds,
            vec![("tag", Column::Str(vec!["a".into(), "b".into()]))],
        );
        assert_eq!(t.n_rows(), 2);
        assert_eq!(t.schema().index_of("id"), Some(0));
        assert_eq!(t.schema().index_of("tag"), Some(1));
        assert_eq!(t.feature_row(1), Some(&[1.5, 2.0][..]));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn rejects_ragged_extras() {
        let ds = Dataset::new(Matrix::from_rows(&[&[0.0]]), vec![0], 2);
        dataset_to_table(&ds, vec![("x", Column::Int(vec![1, 2]))]);
    }
}
