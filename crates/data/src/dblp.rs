//! DBLP–Scholar-style entity-resolution workload (§6.1.2).
//!
//! The real dataset pairs bibliography entries from DBLP and Google
//! Scholar and represents each pair with 17 Magellan similarity features;
//! a logistic-regression model classifies pairs as match / non-match.
//! What the §6.2 experiments actually need from the data is:
//!
//! - 17-dimensional feature vectors,
//! - a ≈23% match rate (so flipping 30/50/70% of the match labels corrupts
//!   7/12/17% of the training set, matching the paper's accounting),
//! - matches and non-matches separable by a linear model but with enough
//!   overlap that label corruption genuinely degrades it.
//!
//! The generator draws match pairs with high per-feature similarity scores
//! and non-matches with low ones, with shared per-pair "difficulty" noise
//! so the classes overlap realistically.

use rain_linalg::{Matrix, RainRng};
use rain_model::Dataset;
use rain_sql::table::Table;

/// Number of Magellan-style similarity features.
pub const N_FEATURES: usize = 17;

/// Configuration for the DBLP workload generator.
#[derive(Debug, Clone)]
pub struct DblpConfig {
    /// Training pairs.
    pub n_train: usize,
    /// Queried pairs.
    pub n_query: usize,
    /// Fraction of pairs that are true matches.
    pub match_rate: f64,
}

impl Default for DblpConfig {
    fn default() -> Self {
        DblpConfig {
            n_train: 2000,
            n_query: 1000,
            match_rate: 0.233,
        }
    }
}

impl DblpConfig {
    /// A small configuration for unit tests.
    pub fn small() -> Self {
        DblpConfig {
            n_train: 300,
            n_query: 150,
            ..Default::default()
        }
    }

    /// Generate the workload deterministically from a seed.
    pub fn generate(&self, seed: u64) -> DblpWorkload {
        let mut rng = RainRng::seed_from_u64(seed);
        let train = gen_pairs(self.n_train, self.match_rate, &mut rng.derive(1));
        let query = gen_pairs(self.n_query, self.match_rate, &mut rng.derive(2));
        DblpWorkload { train, query }
    }
}

/// The generated entity-resolution workload.
#[derive(Debug, Clone)]
pub struct DblpWorkload {
    /// Training pairs with ground-truth labels (1 = match).
    pub train: Dataset,
    /// Queried pairs with ground-truth labels.
    pub query: Dataset,
}

impl DblpWorkload {
    /// The queried relation as a featured SQL table named column `id`.
    pub fn query_table(&self) -> Table {
        crate::tables::dataset_to_table(&self.query, Vec::new())
    }

    /// Ground-truth number of query pairs that are true matches (used to
    /// state the "count should be X" complaint).
    pub fn true_match_count(&self) -> usize {
        self.query.labels().iter().filter(|&&y| y == 1).count()
    }
}

fn gen_pairs(n: usize, match_rate: f64, rng: &mut RainRng) -> Dataset {
    let mut rows = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        let is_match = rng.bernoulli(match_rate);
        // Per-pair difficulty shifts every similarity feature together
        // (hard matches look like easy non-matches). It is the dominant
        // noise source, so corrupted and clean records of the same class
        // are *linearly inseparable* from each other: a model confronted
        // with flipped labels must resolve them by majority, which is what
        // makes loss-based debugging work below 50% corruption and fail
        // above it (the §6.2 crossover).
        let difficulty = (rng.normal() * 0.10).clamp(-0.16, 0.16);
        let base = if is_match { 0.78 } else { 0.22 };
        let x: Vec<f64> = (0..N_FEATURES)
            .map(|_| (base + difficulty + rng.normal() * 0.05).clamp(0.0, 1.0))
            .collect();
        rows.push(x);
        labels.push(is_match as usize);
    }
    let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
    Dataset::new(Matrix::from_rows(&refs), labels, 2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rain_model::{accuracy, train_lbfgs, LbfgsConfig, LogisticRegression};

    #[test]
    fn shapes_and_determinism() {
        let w = DblpConfig::small().generate(7);
        assert_eq!(w.train.len(), 300);
        assert_eq!(w.query.len(), 150);
        assert_eq!(w.train.dim(), N_FEATURES);
        let w2 = DblpConfig::small().generate(7);
        assert_eq!(w.train.labels(), w2.train.labels());
        assert_eq!(
            w.train.features().as_slice(),
            w2.train.features().as_slice()
        );
    }

    #[test]
    fn match_rate_is_close_to_config() {
        let w = DblpConfig::default().generate(1);
        let rate =
            w.train.labels().iter().filter(|&&y| y == 1).count() as f64 / w.train.len() as f64;
        assert!((rate - 0.233).abs() < 0.04, "rate {rate}");
    }

    #[test]
    fn linearly_separable_with_noise() {
        let w = DblpConfig::small().generate(2);
        let mut m = LogisticRegression::new(N_FEATURES, 0.01);
        train_lbfgs(&mut m, &w.train, &LbfgsConfig::default());
        let train_acc = accuracy(&m, &w.train);
        let query_acc = accuracy(&m, &w.query);
        assert!(train_acc > 0.9, "train accuracy {train_acc}");
        assert!(query_acc > 0.85, "query accuracy {query_acc}");
        // The property that matters for the experiments: corruption must
        // genuinely damage the model (the classes are close enough that a
        // majority of flipped labels flips the local decision).
        let mut corrupted = w.train.clone();
        crate::corrupt::flip_labels_where(&mut corrupted, |_, _, y| y == 1, 0.7, |_| 0, 5);
        let mut m2 = LogisticRegression::new(N_FEATURES, 0.01);
        train_lbfgs(&mut m2, &corrupted, &LbfgsConfig::default());
        assert!(
            accuracy(&m2, &w.query) < train_acc - 0.05,
            "70% corruption should hurt accuracy"
        );
    }

    #[test]
    fn corruption_fraction_accounting_matches_paper() {
        // Flipping 30% of match labels should corrupt ≈7% of the training
        // set (and 70% → ≈17%), as reported in §6.2.
        let w = DblpConfig::default().generate(3);
        for (flip, expected) in [(0.3, 0.07), (0.7, 0.17)] {
            let mut train = w.train.clone();
            let flipped =
                crate::corrupt::flip_labels_where(&mut train, |_, _, y| y == 1, flip, |_| 0, 9);
            let frac = flipped.len() as f64 / train.len() as f64;
            assert!((frac - expected).abs() < 0.02, "flip {flip}: {frac}");
        }
    }

    #[test]
    fn query_table_has_features() {
        let w = DblpConfig::small().generate(4);
        let t = w.query_table();
        assert_eq!(t.n_rows(), 150);
        assert!(t.feature_row(0).is_some());
    }
}
