//! Synthetic workload generators mirroring the Rain paper's four
//! evaluation datasets (§6.1.2), plus the systematic label-corruption
//! machinery of §6.1.3.
//!
//! The real datasets (DBLP–Scholar, UCI Adult, Enron, MNIST) are not
//! shipped with this repository; instead each generator reproduces the
//! *properties the experiments actually exercise*:
//!
//! - [`dblp`] — entity-resolution pairs with 17 similarity features and a
//!   ~23% match rate, so flipping 30–70% of match labels corrupts 7–17% of
//!   the training set exactly as in §6.2.
//! - [`adult`] — census records preprocessed the way the paper does
//!   (3 attributes one-hot into 18 binary features), which yields massive
//!   feature-vector duplication (≈120 unique combinations) — the property
//!   that defeats Loss/TwoStep in §6.5.
//! - [`enron`] — two-topic bag-of-words emails over a synthetic vocabulary
//!   containing the literal tokens `http` and `deal` with the containment/
//!   spam statistics reported in §6.2 (13%/76% and 18%/2.7%).
//! - [`digits`] — procedurally rendered 14×14 digit glyphs (7-segment
//!   strokes + jitter + noise), linearly separable like MNIST-with-LR,
//!   supporting the 1→7 corruption and join workloads of §6.3.
//!
//! All generators are deterministic in their seed.

pub mod adult;
pub mod corrupt;
pub mod dblp;
pub mod digits;
pub mod enron;
pub mod tables;

pub use corrupt::{flip_labels_where, relabel_where};
pub use tables::dataset_to_table;
