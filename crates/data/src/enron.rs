//! Enron-style spam-classification workload (§6.1.2, §6.2).
//!
//! Emails are bags of words over a synthetic vocabulary; a logistic model
//! classifies spam vs ham from binary word-presence features. Two special
//! tokens — the literal strings `http` and `deal` — are generated with the
//! containment and class statistics the paper reports:
//!
//! - `http` appears in ≈13% of emails, of which ≈76% are spam;
//! - `deal` appears in ≈18% of emails, of which only ≈2.7% are spam.
//!
//! Each record also carries a `text` column (the present words joined by
//! spaces) so the paper's Q2 `LIKE '%http%'` / `LIKE '%deal%'` predicates
//! run against real strings. Ordinary vocabulary tokens are synthesized as
//! `wNNN`, which cannot collide with the special substrings.

use rain_linalg::{Matrix, RainRng};
use rain_model::Dataset;
use rain_sql::table::{Column, Table};

/// Index of the `http` token in the vocabulary / feature vector.
pub const HTTP: usize = 0;
/// Index of the `deal` token.
pub const DEAL: usize = 1;

/// Configuration for the Enron workload generator.
#[derive(Debug, Clone)]
pub struct EnronConfig {
    /// Training emails.
    pub n_train: usize,
    /// Queried emails.
    pub n_query: usize,
    /// Vocabulary size (≥ 10).
    pub vocab: usize,
    /// Base spam rate.
    pub spam_rate: f64,
}

impl Default for EnronConfig {
    fn default() -> Self {
        EnronConfig {
            n_train: 2000,
            n_query: 1000,
            vocab: 200,
            spam_rate: 0.3,
        }
    }
}

impl EnronConfig {
    /// A small configuration for unit tests.
    pub fn small() -> Self {
        EnronConfig {
            n_train: 400,
            n_query: 200,
            vocab: 60,
            ..Default::default()
        }
    }

    /// Generate the workload deterministically from a seed.
    pub fn generate(&self, seed: u64) -> EnronWorkload {
        assert!(self.vocab >= 10, "vocabulary too small");
        let mut rng = RainRng::seed_from_u64(seed);
        // Per-word spam/ham inclusion probabilities. Words 2.. split into
        // spammy, hammy, and neutral thirds.
        let mut p_spam = vec![0.0; self.vocab];
        let mut p_ham = vec![0.0; self.vocab];
        // Special tokens calibrated to the paper's statistics given
        // P(spam) = 0.3:
        //   P(http)=0.13, P(spam|http)=0.76 ⇒ P(http|spam)=.329, P(http|ham)=.045
        //   P(deal)=0.18, P(spam|deal)=0.027 ⇒ P(deal|spam)=.016, P(deal|ham)=.250
        p_spam[HTTP] = 0.13 * 0.76 / self.spam_rate;
        p_ham[HTTP] = 0.13 * 0.24 / (1.0 - self.spam_rate);
        p_spam[DEAL] = 0.18 * 0.027 / self.spam_rate;
        p_ham[DEAL] = 0.18 * 0.973 / (1.0 - self.spam_rate);
        let mut setup = rng.derive(1);
        for w in 2..self.vocab {
            match w % 3 {
                0 => {
                    p_spam[w] = setup.uniform_range(0.10, 0.30);
                    p_ham[w] = setup.uniform_range(0.01, 0.06);
                }
                1 => {
                    p_spam[w] = setup.uniform_range(0.01, 0.06);
                    p_ham[w] = setup.uniform_range(0.10, 0.30);
                }
                _ => {
                    let p = setup.uniform_range(0.03, 0.15);
                    p_spam[w] = p;
                    p_ham[w] = p;
                }
            }
        }
        let (train, train_words) = gen(
            self.n_train,
            self.spam_rate,
            &p_spam,
            &p_ham,
            &mut rng.derive(2),
        );
        let (query, query_words) = gen(
            self.n_query,
            self.spam_rate,
            &p_spam,
            &p_ham,
            &mut rng.derive(3),
        );
        EnronWorkload {
            train,
            query,
            train_words,
            query_words,
            vocab: self.vocab,
        }
    }
}

/// The generated spam workload.
#[derive(Debug, Clone)]
pub struct EnronWorkload {
    /// Training emails (label 1 = spam) with binary word-presence features.
    pub train: Dataset,
    /// Queried emails.
    pub query: Dataset,
    /// Word indices present per training email.
    pub train_words: Vec<Vec<usize>>,
    /// Word indices present per queried email.
    pub query_words: Vec<Vec<usize>>,
    /// Vocabulary size.
    pub vocab: usize,
}

impl EnronWorkload {
    /// Render a word index as its token.
    pub fn token(w: usize) -> String {
        match w {
            HTTP => "http".into(),
            DEAL => "deal".into(),
            other => format!("w{other:03}"),
        }
    }

    /// The email text (present tokens joined by spaces).
    pub fn text_of(words: &[usize]) -> String {
        words
            .iter()
            .map(|&w| Self::token(w))
            .collect::<Vec<_>>()
            .join(" ")
    }

    /// The queried relation with a `text` column for `LIKE` predicates.
    pub fn query_table(&self) -> Table {
        let text = Column::Str(
            self.query_words
                .iter()
                .map(|ws| Self::text_of(ws))
                .collect(),
        );
        crate::tables::dataset_to_table(&self.query, vec![("text", text)])
    }

    /// True when training email `row` contains word `w`.
    pub fn train_contains(&self, row: usize, w: usize) -> bool {
        self.train.x(row)[w] != 0.0
    }

    /// Ground-truth count of query emails that are spam AND contain `w`.
    pub fn true_spam_count_with(&self, w: usize) -> usize {
        (0..self.query.len())
            .filter(|&i| self.query.y(i) == 1 && self.query.x(i)[w] != 0.0)
            .count()
    }
}

fn gen(
    n: usize,
    spam_rate: f64,
    p_spam: &[f64],
    p_ham: &[f64],
    rng: &mut RainRng,
) -> (Dataset, Vec<Vec<usize>>) {
    let vocab = p_spam.len();
    let mut rows = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    let mut words_all = Vec::with_capacity(n);
    for _ in 0..n {
        let spam = rng.bernoulli(spam_rate);
        let ps = if spam { p_spam } else { p_ham };
        let mut x = vec![0.0; vocab];
        let mut words = Vec::new();
        for w in 0..vocab {
            if rng.bernoulli(ps[w]) {
                x[w] = 1.0;
                words.push(w);
            }
        }
        rows.push(x);
        labels.push(spam as usize);
        words_all.push(words);
    }
    let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
    (Dataset::new(Matrix::from_rows(&refs), labels, 2), words_all)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rain_model::{accuracy, train_lbfgs, LbfgsConfig, LogisticRegression};

    #[test]
    fn token_statistics_match_paper() {
        let w = EnronConfig::default().generate(1);
        let n = w.train.len() as f64;
        let with_http: Vec<usize> = (0..w.train.len())
            .filter(|&i| w.train_contains(i, HTTP))
            .collect();
        let with_deal: Vec<usize> = (0..w.train.len())
            .filter(|&i| w.train_contains(i, DEAL))
            .collect();
        let p_http = with_http.len() as f64 / n;
        let p_deal = with_deal.len() as f64 / n;
        assert!((p_http - 0.13).abs() < 0.03, "P(http) {p_http}");
        assert!((p_deal - 0.18).abs() < 0.03, "P(deal) {p_deal}");
        let spam_http = with_http.iter().filter(|&&i| w.train.y(i) == 1).count() as f64
            / with_http.len() as f64;
        let spam_deal = with_deal.iter().filter(|&&i| w.train.y(i) == 1).count() as f64
            / with_deal.len() as f64;
        assert!((spam_http - 0.76).abs() < 0.1, "P(spam|http) {spam_http}");
        assert!(spam_deal < 0.1, "P(spam|deal) {spam_deal}");
    }

    #[test]
    fn texts_contain_literal_tokens() {
        let w = EnronConfig::small().generate(2);
        let t = w.query_table();
        let text_col = t.schema().index_of("text").unwrap();
        let mut saw_http = false;
        for i in 0..t.n_rows() {
            if let rain_sql::Value::Str(s) = t.value(i, text_col) {
                let has = s.split(' ').any(|tok| tok == "http");
                assert_eq!(has, s.contains("http"), "substring-vs-token mismatch: {s}");
                saw_http |= has;
            }
        }
        assert!(saw_http, "no query email contains http");
    }

    #[test]
    fn spam_model_is_learnable() {
        let w = EnronConfig::small().generate(3);
        let mut m = LogisticRegression::new(w.vocab, 0.01);
        train_lbfgs(&mut m, &w.train, &LbfgsConfig::default());
        assert!(accuracy(&m, &w.query) > 0.85);
    }

    #[test]
    fn rule_based_corruption_rates() {
        // Labeling all 'http' training emails spam flips ≈3% of labels
        // (paper: 3.14%); the 'deal' rule flips ≈17.5%.
        let w = EnronConfig::default().generate(4);
        let mut t1 = w.train.clone();
        let flipped_http = crate::corrupt::relabel_where(&mut t1, |_, x, _| x[HTTP] != 0.0, 1);
        let frac = flipped_http.len() as f64 / w.train.len() as f64;
        assert!((frac - 0.031).abs() < 0.02, "http rule flips {frac}");
        let mut t2 = w.train.clone();
        let flipped_deal = crate::corrupt::relabel_where(&mut t2, |_, x, _| x[DEAL] != 0.0, 1);
        let frac = flipped_deal.len() as f64 / w.train.len() as f64;
        assert!((frac - 0.175).abs() < 0.04, "deal rule flips {frac}");
    }

    #[test]
    fn determinism() {
        let a = EnronConfig::small().generate(5);
        let b = EnronConfig::small().generate(5);
        assert_eq!(a.train.labels(), b.train.labels());
        assert_eq!(a.query_words, b.query_words);
    }
}
