//! Experiment harness reproducing every table and figure of the Rain
//! paper's evaluation (§6 and appendices).
//!
//! Each experiment lives in [`experiments`] as a `run(quick) -> String`
//! function returning the TSV the paper's artifact would plot, with a
//! matching thin binary in `src/bin/`. `quick = true` shrinks workloads
//! for smoke tests; the defaults regenerate the full series reported in
//! `EXPERIMENTS.md`.
//!
//! ```text
//! cargo run --release -p rain-bench --bin fig3_dblp_recall
//! cargo run --release -p rain-bench --bin run_all        # everything
//! ```

pub mod experiments;
pub mod harness;
pub mod microbench;

pub use harness::{is_quick, Tsv};
pub use microbench::{black_box, BenchGroup};
