//! A tiny self-contained micro-benchmark harness.
//!
//! The workspace carries no external dependencies, so instead of criterion
//! each bench target is a plain binary (`harness = false`) driving this
//! module: warm up once, time `samples` runs, print min / median / mean
//! per benchmark as an aligned table. Sample counts shrink under
//! `--quick` / `RAIN_QUICK=1` so CI can smoke-run the benches.

use std::time::Instant;

/// Re-export of the compiler fence that keeps benchmarked results alive.
pub use std::hint::black_box;

/// One benchmark group: named timings accumulated then printed together.
pub struct BenchGroup {
    group: String,
    samples: usize,
    rows: Vec<(String, Vec<f64>)>,
}

impl BenchGroup {
    /// A group printing under `group`, timing `samples` runs per bench
    /// (shrunk to 3 under `--quick` / `RAIN_QUICK=1`).
    pub fn new(group: &str, samples: usize) -> Self {
        let samples = if crate::harness::is_quick() {
            samples.min(3)
        } else {
            samples
        };
        BenchGroup {
            group: group.to_string(),
            samples: samples.max(1),
            rows: Vec::new(),
        }
    }

    /// Time `f` (after one warm-up call) and record the samples.
    pub fn bench<R>(&mut self, name: &str, mut f: impl FnMut() -> R) -> &mut Self {
        black_box(f());
        let mut secs = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t = Instant::now();
            black_box(f());
            secs.push(t.elapsed().as_secs_f64());
        }
        self.rows.push((name.to_string(), secs));
        self
    }

    /// Median seconds of a recorded bench (for programmatic comparisons,
    /// e.g. the optimized-vs-naive speedup line).
    pub fn median_secs(&self, name: &str) -> Option<f64> {
        self.rows
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, secs)| median(secs))
    }

    /// Print the group as an aligned `name  min  median  mean` table.
    pub fn finish(&self) {
        let width = self
            .rows
            .iter()
            .map(|(n, _)| n.len())
            .max()
            .unwrap_or(4)
            .max(4);
        println!("\n{} ({} samples)", self.group, self.samples);
        println!(
            "{:width$}  {:>12} {:>12} {:>12}",
            "name", "min", "median", "mean"
        );
        for (name, secs) in &self.rows {
            let min = secs.iter().cloned().fold(f64::INFINITY, f64::min);
            let mean = secs.iter().sum::<f64>() / secs.len() as f64;
            println!(
                "{name:width$}  {:>12} {:>12} {:>12}",
                fmt_secs(min),
                fmt_secs(median(secs)),
                fmt_secs(mean)
            );
        }
    }
}

fn median(secs: &[f64]) -> f64 {
    let mut s = secs.to_vec();
    s.sort_by(|a, b| a.partial_cmp(b).expect("finite timing"));
    s[s.len() / 2]
}

fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else {
        format!("{:.3} µs", s * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_reports() {
        let mut g = BenchGroup::new("demo", 5);
        g.bench("noop", || 1 + 1);
        assert!(g.median_secs("noop").is_some());
        assert!(g.median_secs("missing").is_none());
    }

    #[test]
    fn median_of_odd_and_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 3.0);
    }
}
