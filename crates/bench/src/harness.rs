//! Shared experiment plumbing: TSV assembly and workload wiring.

use rain_core::prelude::*;
use rain_model::Classifier;
use rain_sql::Database;

/// `--quick` on the command line (or `RAIN_QUICK=1`) shrinks every
/// experiment for smoke-testing.
pub fn is_quick() -> bool {
    std::env::args().any(|a| a == "--quick") || std::env::var("RAIN_QUICK").is_ok_and(|v| v == "1")
}

/// Tiny TSV builder: comment header plus tab-joined rows.
#[derive(Debug, Default, Clone)]
pub struct Tsv {
    out: String,
}

impl Tsv {
    /// Start a TSV with a `#`-prefixed title line.
    pub fn new(title: &str) -> Self {
        Tsv {
            out: format!("# {title}\n"),
        }
    }

    /// Add a `#`-prefixed comment line.
    pub fn comment(&mut self, text: &str) -> &mut Self {
        self.out.push_str("# ");
        self.out.push_str(text);
        self.out.push('\n');
        self
    }

    /// Add the column-header row.
    pub fn header(&mut self, cols: &[&str]) -> &mut Self {
        self.out.push_str(&cols.join("\t"));
        self.out.push('\n');
        self
    }

    /// Add a data row.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        self.out.push_str(&cells.join("\t"));
        self.out.push('\n');
        self
    }

    /// Finish and return the TSV text.
    pub fn finish(self) -> String {
        self.out
    }
}

/// Format a float with 3 decimals for TSV cells.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Build a single-query debugging session.
pub fn session(
    db: Database,
    train: rain_model::Dataset,
    model: Box<dyn Classifier>,
    sql: &str,
    complaints: Vec<Complaint>,
) -> DebugSession {
    DebugSession::new(db, train, model).with_query(QuerySpec::new(sql).with_complaints(complaints))
}

/// Run one method and return `(auccr, recall_curve, report)`.
pub fn run_method(
    session: &DebugSession,
    method: Method,
    truth: &[usize],
    budget: usize,
) -> (f64, Vec<f64>, DebugReport) {
    let report = session
        .run(method, &RunConfig::paper(budget))
        .expect("query execution failed");
    let auc = report.auccr(truth);
    let curve = report.recall_curve(truth);
    (auc, curve, report)
}

/// Downsample a recall curve to at most `points` evenly spaced samples
/// (keeps TSVs readable).
pub fn sample_curve(curve: &[f64], points: usize) -> Vec<(usize, f64)> {
    if curve.is_empty() {
        return Vec::new();
    }
    let n = curve.len();
    let step = (n / points).max(1);
    let mut out: Vec<(usize, f64)> = (0..n).step_by(step).map(|k| (k + 1, curve[k])).collect();
    if out.last().map(|&(k, _)| k) != Some(n) {
        out.push((n, curve[n - 1]));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tsv_shape() {
        let mut t = Tsv::new("demo");
        t.comment("note")
            .header(&["a", "b"])
            .row(&["1".into(), "2".into()]);
        let s = t.finish();
        assert_eq!(s, "# demo\n# note\na\tb\n1\t2\n");
    }

    #[test]
    fn curve_sampling_keeps_endpoints() {
        let curve: Vec<f64> = (1..=100).map(|k| k as f64 / 100.0).collect();
        let s = sample_curve(&curve, 10);
        assert_eq!(s.first(), Some(&(1, 0.01)));
        assert_eq!(s.last(), Some(&(100, 1.0)));
        assert!(s.len() <= 12);
    }
}
