//! Empirical demonstrations of the appendix theorems.
//!
//! - Theorem A.1 (appendix A): under complaint ambiguity, the probability
//!   that TwoStep assigns the noisy training point a nonzero influence
//!   score vanishes as the clean queried population grows.
//! - Theorem C.1 (appendix C): as the number of (mutually parallel,
//!   orthogonal-to-clean) corrupted training records grows, their training
//!   loss and self-influence go to 0 — so Loss/InfLoss rank them at the
//!   bottom — while a single complaint ranks them all at the top.

use crate::harness::{f3, Tsv};
use rain_core::prelude::*;
use rain_core::{sql_step, SqlStep, SqlStepConfig};
use rain_influence::{inverse_hvp, score_records, InfluenceConfig};
use rain_linalg::{Matrix, RainRng};
use rain_model::{train_lbfgs, Classifier, Dataset, LbfgsConfig, LogisticRegression};
use rain_sql::{run_query, Database, ExecOptions};

/// Build the Theorem A.1 setting: clean data lives in dims `0..d-1`; the
/// single noisy training point `t` has feature `e_{d-1}` (orthogonal to
/// everything clean). The queried set has `n` clean records plus `m`
/// records parallel to `t`.
fn thm_a1_setting(n: usize, m: usize, seed: u64) -> (Dataset, usize, Database, LogisticRegression) {
    let d = 6;
    let mut rng = RainRng::seed_from_u64(seed);
    let mut rows: Vec<Vec<f64>> = Vec::new();
    let mut labels = Vec::new();
    // Clean training data: separable in dims 0..d-1, zero in dim d-1.
    for _ in 0..80 {
        let y = rng.bernoulli(0.5) as usize;
        let mut x = rng.normal_vec(d - 1, 0.5);
        x[0] += if y == 1 { 1.5 } else { -1.5 };
        x.push(0.0);
        rows.push(x);
        labels.push(y);
    }
    // The noisy point t: label 0 ("l'"), feature e_{d-1}.
    let mut t = vec![0.0; d];
    t[d - 1] = 2.0;
    rows.push(t);
    labels.push(0);
    let noisy_idx = rows.len() - 1;
    let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
    let train = Dataset::new(Matrix::from_rows(&refs), labels, 2);

    // Queried set: n clean records, all from the class-0 region (so the
    // current query count of predicted-1 records is 0, as in the
    // theorem's construction), plus m records parallel to t.
    let mut qrows: Vec<Vec<f64>> = Vec::new();
    for _ in 0..n {
        let mut x = rng.normal_vec(d - 1, 0.5);
        x[0] -= 1.5;
        x.push(0.0);
        qrows.push(x);
    }
    for _ in 0..m {
        let mut x = vec![0.0; d];
        x[d - 1] = rng.uniform_range(1.0, 3.0);
        qrows.push(x);
    }
    let qrefs: Vec<&[f64]> = qrows.iter().map(|r| r.as_slice()).collect();
    let qlabels = vec![0usize; qrows.len()];
    let qds = Dataset::new(Matrix::from_rows(&qrefs), qlabels, 2);
    let mut db = Database::new();
    db.register("q", rain_data::dataset_to_table(&qds, Vec::new()));
    let mut model = LogisticRegression::without_bias(d, 0.05);
    train_lbfgs(&mut model, &train, &LbfgsConfig::default());
    (train, noisy_idx, db, model)
}

/// Theorem A.1: fraction of trials in which TwoStep's chosen ILP solution
/// gives the noisy point a nonzero score, as the clean queried population
/// `n` grows (`m`, `k` fixed).
pub fn thm_a1(quick: bool) -> String {
    let mut tsv =
        Tsv::new("Theorem A.1: P(noisy point scored nonzero by TwoStep) vs queried size n");
    let (m, k) = (3usize, 2.0);
    tsv.comment(&format!(
        "m = {m} non-orthogonal queried records, complaint count = {k}"
    ));
    tsv.header(&["n", "p_nonzero"]);
    let ns: &[usize] = if quick {
        &[20, 80]
    } else {
        &[20, 50, 100, 200, 400]
    };
    let trials = if quick { 10 } else { 30 };
    for &n in ns {
        let mut nonzero = 0usize;
        for trial in 0..trials {
            let (train, noisy_idx, db, model) = thm_a1_setting(n, m, 1000 + trial as u64);
            // Query: count of records predicted 1 (= 1 - l'); complain it
            // should be k (currently 0).
            let out = run_query(
                &db,
                &model,
                "SELECT COUNT(*) FROM q WHERE predict(*) = 1",
                ExecOptions::debug(),
            )
            .expect("query");
            let cfg = SqlStepConfig {
                seed: trial as u64,
                ..Default::default()
            };
            let SqlStep::Repairs(repairs) = sql_step(&out, &[Complaint::scalar_eq(k)], 2, &cfg)
            else {
                continue;
            };
            // TwoStep influence step: q = -Σ p_target over repairs.
            let mut gq = vec![0.0; model.n_params()];
            for (var, class) in repairs {
                let info = out.predvars.info(var);
                let x = db
                    .table(&info.table)
                    .unwrap()
                    .feature_row(info.row)
                    .unwrap();
                rain_linalg::vecops::axpy(-1.0, &model.grad_proba(x, class), &mut gq);
            }
            let icfg = InfluenceConfig::default();
            let s = inverse_hvp(&model, &train, &gq, &icfg).x;
            let scores = score_records(&model, &train, &s, 1);
            // "Nonzero" relative to the scale of real scores (CG noise
            // floor is far below this).
            let scale = scores.iter().fold(0.0f64, |m, v| m.max(v.abs()));
            if scores[noisy_idx].abs() > 1e-6 * scale.max(1e-12) {
                nonzero += 1;
            }
        }
        tsv.row(&[n.to_string(), f3(nonzero as f64 / trials as f64)]);
    }
    tsv.finish()
}

/// Build the Theorem C.1 setting: clean records in dims `0..10`,
/// `k_corrupt` corrupted records all parallel along dim 10 with inverted
/// labels.
fn thm_c1_setting(k_corrupt: usize, seed: u64) -> (Dataset, Vec<usize>, Database) {
    let d = 11;
    let mut rng = RainRng::seed_from_u64(seed);
    let mut rows: Vec<Vec<f64>> = Vec::new();
    let mut labels = Vec::new();
    for _ in 0..120 {
        let y = rng.bernoulli(0.5) as usize;
        let mut x = rng.normal_vec(d - 1, 0.5);
        x[0] += if y == 1 { 1.5 } else { -1.5 };
        x.push(0.0);
        rows.push(x);
        labels.push(y);
    }
    let mut truth = Vec::new();
    for _ in 0..k_corrupt {
        let mut x = vec![0.0; d];
        x[d - 1] = rng.uniform_range(1.0, 2.0);
        rows.push(x);
        truth.push(rows.len() - 1);
        labels.push(0); // true label along this direction is 1; inverted
    }
    let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
    let train = Dataset::new(Matrix::from_rows(&refs), labels, 2);
    // Queried records parallel to the corrupted direction.
    let mut qrows = Vec::new();
    for _ in 0..40 {
        let mut x = vec![0.0; d];
        x[d - 1] = rng.uniform_range(1.0, 2.0);
        qrows.push(x);
    }
    let qrefs: Vec<&[f64]> = qrows.iter().map(|r| r.as_slice()).collect();
    let qds = Dataset::new(Matrix::from_rows(&qrefs), vec![1; 40], 2);
    let mut db = Database::new();
    db.register("q", rain_data::dataset_to_table(&qds, Vec::new()));
    (train, truth, db)
}

/// Theorem C.1: corrupted-record loss and self-influence vanish as the
/// corrupted population grows, while the complaint-driven ranking stays
/// perfect.
pub fn thm_c1(quick: bool) -> String {
    let mut tsv =
        Tsv::new("Theorem C.1: loss & self-influence of corrupted records vs corruption count");
    tsv.header(&[
        "k_corrupt",
        "mean_loss",
        "mean_self_influence",
        "loss_auccr",
        "holistic_auccr",
    ]);
    let ks: &[usize] = if quick { &[5, 40] } else { &[5, 20, 80, 160] };
    for &k in ks {
        let (train, truth, db) = thm_c1_setting(k, 7);
        let mut model = LogisticRegression::without_bias(11, 0.05);
        train_lbfgs(&mut model, &train, &LbfgsConfig::default());
        // Mean loss of corrupted records.
        let mean_loss: f64 = truth
            .iter()
            .map(|&i| model.example_loss(train.x(i), train.y(i)))
            .sum::<f64>()
            / k as f64;
        // Mean self-influence of corrupted records.
        let icfg = InfluenceConfig {
            threads: 4,
            ..Default::default()
        };
        let mut mean_si = 0.0;
        for &i in &truth {
            let g = model.example_grad(train.x(i), train.y(i));
            let s = inverse_hvp(&model, &train, &g, &icfg).x;
            mean_si += -rain_linalg::vecops::dot(&g, &s) / k as f64;
        }
        // Loss baseline vs Holistic-with-complaint on the full sessions.
        let sess = DebugSession::new(
            db,
            train,
            Box::new(LogisticRegression::without_bias(11, 0.05)),
        )
        .with_query(
            // All 40 parallel queried records are truly class 1; the
            // corrupted model predicts 0. Complain the count is 40.
            QuerySpec::new("SELECT COUNT(*) FROM q WHERE predict(*) = 1")
                .with_complaint(Complaint::scalar_eq(40.0)),
        );
        let loss_auc = sess
            .run(Method::Loss, &RunConfig::paper(k))
            .expect("loss run")
            .auccr(&truth);
        let hol_auc = sess
            .run(Method::Holistic, &RunConfig::paper(k))
            .expect("holistic run")
            .auccr(&truth);
        tsv.row(&[
            k.to_string(),
            format!("{mean_loss:.5}"),
            format!("{mean_si:.5}"),
            f3(loss_auc),
            f3(hol_auc),
        ]);
    }
    tsv.finish()
}
