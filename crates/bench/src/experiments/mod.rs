//! One module per paper artifact. Every `run(quick)` returns the TSV the
//! corresponding table/figure plots; `EXPERIMENTS.md` records
//! paper-vs-measured for each.

pub mod adult;
pub mod dblp;
pub mod mnist;
pub mod nn;
pub mod setups;
pub mod theory;
