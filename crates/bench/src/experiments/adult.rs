//! Adult multi-query experiment: Figure 8 (§6.5).

use super::setups::find_group_row;
use crate::harness::{f3, run_method, Tsv};
use rain_core::prelude::*;
use rain_data::adult::{AdultConfig, N_FEATURES};
use rain_data::flip_labels_where;
use rain_model::LogisticRegression;
use rain_sql::{run_query, Database, ExecOptions, Value};

const Q6: &str = "SELECT AVG(predict(*)) FROM adult GROUP BY gender";
const Q7: &str = "SELECT AVG(predict(*)) FROM adult GROUP BY agedecade";

/// Figure 8: complaints over Q6 (gender groups) and Q7 (age-decade
/// groups), individually and combined. Corruption flips `a` of the
/// (low-income ∧ male ∧ 40–50) training records to high income.
pub fn fig8(quick: bool) -> String {
    let mut tsv = Tsv::new("Figure 8: multi-query complaints on Adult");
    tsv.header(&["corruption", "complaints", "method", "auccr"]);
    let rates: &[f64] = if quick { &[0.5] } else { &[0.3, 0.5] };
    for &rate in rates {
        let cfg = if quick {
            AdultConfig::small()
        } else {
            AdultConfig::default()
        };
        let w = cfg.generate(42);
        let mut train = w.train.clone();
        let pred = w.corruption_predicate();
        let truth = flip_labels_where(&mut train, |id, x, y| pred(id, x, y), rate, |_| 1, 42);
        drop(pred);
        let mut db = Database::new();
        db.register("adult", w.query_table());

        // Locate the complained-about groups and their ground-truth
        // values. "Ground truth" for a monitoring complaint is the value
        // the query produces *without* the corruption — the customer is
        // comparing against last month's chart (§2.1), not against labels
        // a hard-thresholded classifier never reproduces exactly.
        let mut clean_model = LogisticRegression::new(N_FEATURES, 0.01);
        rain_model::train_lbfgs(&mut clean_model, &w.train, &Default::default());
        let out6 = run_query(&db, &clean_model, Q6, ExecOptions::default()).expect("Q6");
        let male_row = find_group_row(&out6, &Value::Str("male".into())).expect("male group");
        let male_avg = match out6.table.value(male_row, 1) {
            Value::Float(v) => v,
            other => panic!("unexpected {other:?}"),
        };
        let out7 = run_query(&db, &clean_model, Q7, ExecOptions::default()).expect("Q7");
        let forties_row = find_group_row(&out7, &Value::Int(40)).expect("40s group");
        let forties_avg = match out7.table.value(forties_row, 1) {
            Value::Float(v) => v,
            other => panic!("unexpected {other:?}"),
        };

        let gender_query =
            QuerySpec::new(Q6).with_complaint(Complaint::value_eq(male_row, 0, male_avg));
        let age_query =
            QuerySpec::new(Q7).with_complaint(Complaint::value_eq(forties_row, 0, forties_avg));

        let variants: Vec<(&str, Vec<QuerySpec>)> = vec![
            ("gender", vec![gender_query.clone()]),
            ("age", vec![age_query.clone()]),
            ("both", vec![gender_query, age_query]),
        ];
        for (label, queries) in variants {
            for method in [Method::Loss, Method::TwoStep, Method::Holistic] {
                let mut sess = DebugSession::new(
                    db.clone(),
                    train.clone(),
                    Box::new(LogisticRegression::new(N_FEATURES, 0.01)),
                );
                sess.queries = queries.clone();
                let budget = if quick {
                    truth.len().min(20)
                } else {
                    truth.len()
                };
                let (auc, _, report) = run_method(&sess, method, &truth, budget);
                let status = report.failure.clone().unwrap_or_default();
                tsv.row(&[f3(rate), label.into(), method.name().into(), f3(auc)]);
                if !status.is_empty() {
                    tsv.comment(&format!("{label}/{}: {status}", method.name()));
                }
            }
        }
    }
    tsv.finish()
}
