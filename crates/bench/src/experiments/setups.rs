//! Workload → session builders shared by the experiments.

use rain_core::prelude::*;
use rain_data::dblp::DblpConfig;
use rain_data::digits::{DigitsConfig, DigitsWorkload, N_CLASSES, N_PIXELS};
use rain_data::enron::{EnronConfig, EnronWorkload};
use rain_data::flip_labels_where;
use rain_model::{LogisticRegression, SoftmaxRegression};
use rain_sql::{run_query, Database, ExecOptions, QueryOutput, Value};

/// The DBLP Q1 session: COUNT of predicted matches with the ground-truth
/// equality complaint; `rate` of the match labels are flipped.
pub fn dblp(rate: f64, seed: u64, quick: bool) -> (DebugSession, Vec<usize>) {
    let cfg = if quick {
        DblpConfig::small()
    } else {
        DblpConfig::default()
    };
    let w = cfg.generate(seed);
    let mut train = w.train.clone();
    let truth = flip_labels_where(&mut train, |_, _, y| y == 1, rate, |_| 0, seed);
    let mut db = Database::new();
    db.register("dblp", w.query_table());
    let sess = DebugSession::new(db, train, Box::new(LogisticRegression::new(17, 0.01)))
        .with_query(
            QuerySpec::new("SELECT COUNT(*) FROM dblp WHERE predict(*) = 1")
                .with_complaint(Complaint::scalar_eq(w.true_match_count() as f64)),
        );
    (sess, truth)
}

/// The Enron Q2 session for one rule word (`HTTP` or `DEAL`): everything
/// containing the word is (mis)labeled spam, and the complaint pins the
/// filtered count to its ground-truth value.
pub fn enron(word: usize, seed: u64, quick: bool) -> (DebugSession, Vec<usize>) {
    let cfg = if quick {
        EnronConfig::small()
    } else {
        EnronConfig::default()
    };
    let w = cfg.generate(seed);
    let mut train = w.train.clone();
    let truth = rain_data::relabel_where(&mut train, |_, x, _| x[word] != 0.0, 1);
    let mut db = Database::new();
    db.register("enron", w.query_table());
    let token = EnronWorkload::token(word);
    let sql = format!("SELECT COUNT(*) FROM enron WHERE predict(*) = 1 AND text LIKE '%{token}%'");
    let target = w.true_spam_count_with(word) as f64;
    let sess = DebugSession::new(db, train, Box::new(LogisticRegression::new(w.vocab, 0.01)))
        .with_query(QuerySpec::new(sql).with_complaint(Complaint::scalar_eq(target)));
    (sess, truth)
}

/// Digit workload with `rate` of the training 1s flipped to 7s.
pub fn corrupted_digits(
    rate: f64,
    seed: u64,
    quick: bool,
) -> (DigitsWorkload, rain_model::Dataset, Vec<usize>) {
    let cfg = if quick {
        DigitsConfig {
            n_train: 300,
            n_query: 200,
        }
    } else {
        DigitsConfig::default()
    };
    let w = cfg.generate(seed);
    let mut train = w.train.clone();
    let truth = flip_labels_where(&mut train, |_, _, y| y == 1, rate, |_| 7, seed);
    (w, train, truth)
}

/// Fresh softmax model for digit workloads.
pub fn digit_model() -> Box<SoftmaxRegression> {
    Box::new(SoftmaxRegression::new(N_PIXELS, N_CLASSES, 0.01))
}

/// The MNIST Q5 session (COUNT of predicted 1s over the full query set)
/// with an optional complaint-target override (`None` = ground truth).
pub fn digits_q5(
    rate: f64,
    seed: u64,
    quick: bool,
    target: Option<f64>,
) -> (DebugSession, Vec<usize>, f64) {
    let (w, train, truth) = corrupted_digits(rate, seed, quick);
    let limit = w.query.len();
    let all: Vec<usize> = (0..10).collect();
    let mut db = Database::new();
    db.register("mnist", w.query_table_for(&all, limit));
    let true_ones = w.query_rows_with_digits(&[1]).len() as f64;
    let x = target.unwrap_or(true_ones);
    let sess = DebugSession::new(db, train, digit_model()).with_query(
        QuerySpec::new("SELECT COUNT(*) FROM mnist WHERE predict(*) = 1")
            .with_complaint(Complaint::scalar_eq(x)),
    );
    (sess, truth, true_ones)
}

/// Execute a session's first query once (debug mode) against a freshly
/// trained model — used to derive complaints from concrete outputs.
pub fn first_output(sess: &DebugSession) -> QueryOutput {
    let mut model = sess.model.clone();
    rain_model::train_lbfgs(model.as_mut(), &sess.train, &sess.train_cfg);
    run_query(
        &sess.db,
        model.as_ref(),
        &sess.queries[0].sql,
        ExecOptions::debug(),
    )
    .expect("query runs")
}

/// Find the output row whose first column equals `key`.
pub fn find_group_row(out: &QueryOutput, key: &Value) -> Option<usize> {
    (0..out.table.n_rows()).find(|&r| out.table.value(r, 0) == *key)
}

/// Concrete scalar of a one-aggregate output as f64.
pub fn scalar_f64(out: &QueryOutput) -> f64 {
    match out.scalar() {
        rain_sql::ScalarResult::Value(Value::Int(v)) => v as f64,
        rain_sql::ScalarResult::Value(Value::Float(v)) => v,
        other => panic!("no scalar: {other:?}"),
    }
}
