//! DBLP and Enron experiments: Figures 3, 4, 5 and Table 3 (§6.2).

use super::setups;
use crate::harness::{f3, run_method, sample_curve, Tsv};
use rain_core::prelude::*;
use rain_data::dblp::DblpConfig;
use rain_data::enron;
use rain_data::flip_labels_where;
use rain_model::{f1_score, train_lbfgs, LbfgsConfig, LogisticRegression};

/// Figure 3: recall curves on DBLP for corruption rates 30/50/70% of the
/// match labels, for all four methods.
pub fn fig3(quick: bool) -> String {
    let mut tsv =
        Tsv::new("Figure 3: DBLP recall curves by corruption rate (grey = perfect recall)");
    tsv.header(&["corruption", "method", "k", "recall"]);
    let methods: &[Method] = if quick {
        &[Method::Loss, Method::TwoStep, Method::Holistic]
    } else {
        &[
            Method::Loss,
            Method::InfLoss,
            Method::TwoStep,
            Method::Holistic,
        ]
    };
    for &rate in &[0.3, 0.5, 0.7] {
        for &method in methods {
            let (sess, truth) = setups::dblp(rate, 42, quick);
            let budget = if quick {
                truth.len().min(30)
            } else {
                truth.len()
            };
            let (_, curve, _) = run_method(&sess, method, &truth, budget);
            for (k, r) in sample_curve(&curve, 20) {
                tsv.row(&[f3(rate), method.name().into(), k.to_string(), f3(r)]);
            }
        }
    }
    tsv.finish()
}

/// Figure 4: querying-set F1 of the trained model vs corruption rate.
pub fn fig4(quick: bool) -> String {
    let mut tsv = Tsv::new("Figure 4: F1 on the querying set vs corruption rate (DBLP)");
    tsv.header(&["corruption", "f1"]);
    let cfg = if quick {
        DblpConfig::small()
    } else {
        DblpConfig::default()
    };
    let w = cfg.generate(42);
    for pct in (0..=9).map(|p| p as f64 / 10.0) {
        let mut train = w.train.clone();
        flip_labels_where(&mut train, |_, _, y| y == 1, pct, |_| 0, 42);
        let mut m = LogisticRegression::new(17, 0.01);
        train_lbfgs(&mut m, &train, &LbfgsConfig::default());
        tsv.row(&[f3(pct), f3(f1_score(&m, &w.query))]);
    }
    tsv.finish()
}

/// Figure 5: per-iteration runtime breakdown (Train / Encode / Rank) on
/// DBLP at 50% corruption.
pub fn fig5(quick: bool) -> String {
    let mut tsv = Tsv::new("Figure 5: per-iteration runtime (seconds) on DBLP, 50% corruption");
    tsv.header(&["method", "train_s", "encode_s", "rank_s", "total_s"]);
    let methods: &[Method] = &[
        Method::Loss,
        Method::InfLoss,
        Method::TwoStep,
        Method::Holistic,
    ];
    for &method in methods {
        let (sess, _truth) = setups::dblp(0.5, 42, quick);
        // A few iterations are enough to measure steady-state timing.
        let iters = if method == Method::InfLoss && quick {
            1
        } else {
            3
        };
        let report = sess
            .run(method, &RunConfig::paper(10 * iters))
            .expect("run");
        let (t, e, r) = report.mean_timings();
        tsv.row(&[method.name().into(), f3(t), f3(e), f3(r), f3(t + e + r)]);
    }
    tsv.finish()
}

/// Table 3: AUCCR on DBLP (medium corruption) and Enron with the
/// `'%http%'` and `'%deal%'` rule corruptions.
pub fn tab3(quick: bool) -> String {
    let mut tsv = Tsv::new("Table 3: AUCCR for DBLP medium corruption and ENRON rules");
    tsv.comment("InfLoss on Enron is budget-capped (the paper reports it took 2 days)");
    tsv.header(&["dataset", "method", "auccr"]);
    let methods: &[Method] = &[
        Method::InfLoss,
        Method::Loss,
        Method::TwoStep,
        Method::Holistic,
    ];

    // DBLP, 50% corruption.
    for &method in methods {
        if quick && method == Method::InfLoss {
            continue;
        }
        let (sess, truth) = setups::dblp(0.5, 42, quick);
        let budget = if quick {
            truth.len().min(30)
        } else {
            truth.len()
        };
        let (auc, _, _) = run_method(&sess, method, &truth, budget);
        tsv.row(&["DBLP".into(), method.name().into(), f3(auc)]);
    }
    // Enron rules.
    for (label, word) in [
        ("ENRON '%http%'", enron::HTTP),
        ("ENRON '%deal%'", enron::DEAL),
    ] {
        for &method in methods {
            if quick && method == Method::InfLoss {
                continue;
            }
            let (sess, truth) = setups::enron(word, 42, quick);
            let cap = if method == Method::InfLoss {
                60
            } else {
                truth.len()
            };
            let budget = if quick {
                truth.len().min(20)
            } else {
                truth.len().min(cap)
            };
            let (auc, _, _) = run_method(&sess, method, &truth, budget);
            tsv.row(&[label.into(), method.name().into(), f3(auc)]);
        }
    }
    tsv.finish()
}

#[cfg(test)]
mod tests {
    #[test]
    fn fig4_runs_quick() {
        let out = super::fig4(true);
        assert!(out.contains("corruption\tf1"));
        assert_eq!(out.lines().filter(|l| !l.starts_with('#')).count(), 11);
    }
}
