//! MNIST-style experiments: Figures 6, 7, 9, 10 (§6.3, §6.4, §6.6).

use super::setups::{self, corrupted_digits, digit_model, first_output, scalar_f64};
use crate::harness::{f3, run_method, sample_curve, Tsv};
use rain_core::prelude::*;
use rain_data::digits::DigitsWorkload;
use rain_sql::{Database, Value};

/// Ground-truth digit of a table row (tables are built with `id` columns
/// holding original query-set positions).
fn truth_digit(w: &DigitsWorkload, table: &rain_sql::table::Table, row: usize) -> usize {
    let id_col = table.schema().index_of("id").expect("id column");
    match table.value(row, id_col) {
        Value::Int(id) => w.query.y(id as usize),
        other => panic!("unexpected id {other:?}"),
    }
}

/// The Q3 join session: `left` = query 1s, `right` = query 7s, with
/// lineage-anchored tuple complaints for join rows where exactly one side
/// is mispredicted (§6.3's complaint generation).
fn q3_session(rate: f64, seed: u64, quick: bool) -> (DebugSession, Vec<usize>, usize) {
    let (w, train, truth) = corrupted_digits(rate, seed, quick);
    let limit = if quick { 40 } else { 120 };
    let left = w.query_table_for(&[1], limit);
    let right = w.query_table_for(&[7], limit);
    let mut db = Database::new();
    db.register("left", left);
    db.register("right", right);
    let sql = "SELECT * FROM left l, right r WHERE predict(l) = predict(r)";
    let base = DebugSession::new(db, train, digit_model()).with_query(QuerySpec::new(sql));
    // Derive complaints from the first corrupted execution.
    let out = first_output(&base);
    let mut complaints = Vec::new();
    for prov in &out.row_prov {
        let rain_sql::BoolProv::PredEq {
            left: lv,
            right: rv,
        } = prov
        else {
            continue;
        };
        let li = out.predvars.info(*lv).clone();
        let ri = out.predvars.info(*rv).clone();
        let ltable = base.db.table(&li.table).unwrap();
        let rtable = base.db.table(&ri.table).unwrap();
        let l_ok = out.predvars.preds()[*lv as usize] == truth_digit(&w, ltable, li.row);
        let r_ok = out.predvars.preds()[*rv as usize] == truth_digit(&w, rtable, ri.row);
        if l_ok != r_ok {
            complaints.push(Complaint::join_delete(&li.table, li.row, &ri.table, ri.row));
        }
    }
    let n_complaints = complaints.len();
    let mut session = base;
    session.queries[0].complaints = complaints;
    (session, truth, n_complaints)
}

/// Figure 6(a,b): tuple complaints on Q3 join rows — recall curves at 50%
/// corruption and AUCCR across corruption rates.
pub fn fig6ab(quick: bool) -> String {
    let mut tsv = Tsv::new("Figure 6(a,b): MNIST Q3 join, tuple complaints on join rows");
    tsv.header(&[
        "corruption",
        "method",
        "n_complaints",
        "k",
        "recall",
        "auccr",
    ]);
    for &rate in &[0.3, 0.5, 0.7] {
        for method in [Method::Loss, Method::TwoStep, Method::Holistic] {
            let (sess, truth, nc) = q3_session(rate, 42, quick);
            let budget = if quick {
                truth.len().min(20)
            } else {
                truth.len()
            };
            let (auc, curve, _) = run_method(&sess, method, &truth, budget);
            for (k, r) in sample_curve(&curve, 10) {
                tsv.row(&[
                    f3(rate),
                    method.name().into(),
                    nc.to_string(),
                    k.to_string(),
                    f3(r),
                    f3(auc),
                ]);
            }
        }
    }
    tsv.finish()
}

/// The Q4 session: COUNT over a disjoint-digit join with the complaint
/// that the count should be 0 (§6.3's second experiment).
fn q4_session(rate: f64, seed: u64, quick: bool) -> (DebugSession, Vec<usize>) {
    let (w, train, truth) = corrupted_digits(rate, seed, quick);
    let limit = if quick { 60 } else { 250 };
    let left = w.query_table_for(&[1, 2, 3, 4, 5], limit);
    let right = w.query_table_for(&[6, 7, 8, 9, 0], limit);
    let mut db = Database::new();
    db.register("left", left);
    db.register("right", right);
    let sql = "SELECT COUNT(*) FROM left l, right r WHERE predict(l) = predict(r)";
    let sess = DebugSession::new(db, train, digit_model())
        .with_query(QuerySpec::new(sql).with_complaint(Complaint::scalar_eq(0.0)));
    (sess, truth)
}

/// Figure 6(c,d): COUNT-of-join complaint ("the count should be 0").
pub fn fig6cd(quick: bool) -> String {
    let mut tsv = Tsv::new("Figure 6(c,d): MNIST Q4 COUNT over join, complaint count=0");
    tsv.header(&["corruption", "method", "k", "recall", "auccr"]);
    for &rate in &[0.3, 0.5, 0.7] {
        for method in [Method::Loss, Method::TwoStep, Method::Holistic] {
            let (sess, truth) = q4_session(rate, 42, quick);
            let budget = if quick {
                truth.len().min(20)
            } else {
                truth.len()
            };
            let (auc, curve, report) = run_method(&sess, method, &truth, budget);
            if let Some(f) = &report.failure {
                tsv.comment(&format!("{} at rate {rate}: {f}", method.name()));
            }
            for (k, r) in sample_curve(&curve, 10) {
                tsv.row(&[
                    f3(rate),
                    method.name().into(),
                    k.to_string(),
                    f3(r),
                    f3(auc),
                ]);
            }
        }
    }
    tsv.finish()
}

/// §6.3 third experiment: overlapping relations at mix rates 5/25/35%.
/// The complaint pins the join count to its ground-truth (nonzero) value;
/// TwoStep's ILP is expected to hit its budget here.
pub fn fig6_mix(quick: bool) -> String {
    let mut tsv = Tsv::new("Section 6.3 mix-rate experiment: overlapping join relations");
    tsv.comment("expected: TwoStep times out (paper: ILP unsolved in 30 min)");
    tsv.header(&["mix", "method", "auccr", "status"]);
    for &mix in &[0.05, 0.25, 0.35] {
        let (w, train, truth) = corrupted_digits(0.5, 42, quick);
        let limit = if quick { 60 } else { 250 };
        let (left, right) = w.mixed_tables(&[1, 2, 3, 4, 5], &[6, 7, 8, 9, 0], 1, mix, limit, 42);
        // Ground-truth count: true 1s remaining on the left × true 1s
        // moved to the right.
        let count_ones = |t: &rain_sql::table::Table| -> usize {
            (0..t.n_rows())
                .filter(|&r| truth_digit(&w, t, r) == 1)
                .count()
        };
        let target = (count_ones(&left) * count_ones(&right)) as f64;
        let mut db = Database::new();
        db.register("left", left);
        db.register("right", right);
        let sql = "SELECT COUNT(*) FROM left l, right r WHERE predict(l) = predict(r)";
        let sess = DebugSession::new(db, train, digit_model())
            .with_query(QuerySpec::new(sql).with_complaint(Complaint::scalar_eq(target)));
        for method in [Method::Loss, Method::TwoStep, Method::Holistic] {
            let budget = if quick {
                truth.len().min(20)
            } else {
                truth.len()
            };
            let (auc, _, report) = run_method(&sess, method, &truth, budget);
            let status = report.failure.clone().unwrap_or_else(|| "ok".into());
            tsv.row(&[f3(mix), method.name().into(), f3(auc), status]);
        }
    }
    tsv.finish()
}

/// Figure 7: ambiguity sweep — replace a fraction `a` of the Q3 join
/// complaints with direct prediction complaints on both endpoints.
pub fn fig7(quick: bool) -> String {
    let mut tsv = Tsv::new(
        "Figure 7: varying ambiguity — join complaints replaced by direct \
         prediction complaints",
    );
    tsv.header(&["direct_frac", "method", "auccr"]);
    let fracs: &[f64] = if quick {
        &[0.1, 0.8]
    } else {
        &[0.1, 0.3, 0.5, 0.8]
    };
    for &frac in fracs {
        let (sess, truth, _) = q3_session(0.3, 42, quick);
        // Replace the first ⌈a·n⌉ join complaints with prediction
        // complaints carrying the ground-truth classes.
        let (w, _, _) = corrupted_digits(0.3, 42, quick);
        let mut complaints = sess.queries[0].complaints.clone();
        let n_replace = ((complaints.len() as f64) * frac).ceil() as usize;
        let mut replaced = Vec::new();
        for c in complaints.drain(..) {
            if replaced.len() / 2 < n_replace {
                if let Complaint::JoinDelete { left, right } = &c {
                    for (table, row) in [left, right] {
                        let t = sess.db.table(table).unwrap();
                        let digit = truth_digit(&w, t, *row);
                        replaced.push(Complaint::prediction_is(table, *row, digit));
                    }
                    continue;
                }
            }
            replaced.push(c);
        }
        let mut sess = sess;
        sess.queries[0].complaints = replaced;
        for method in [Method::Loss, Method::TwoStep, Method::Holistic] {
            let budget = if quick {
                truth.len().min(20)
            } else {
                truth.len()
            };
            let (auc, _, _) = run_method(&sess, method, &truth, budget);
            tsv.row(&[f3(frac), method.name().into(), f3(auc)]);
        }
    }
    tsv.finish()
}

/// Figure 9: one aggregate complaint vs increasing numbers of labeled
/// point complaints (§6.6).
pub fn fig9(quick: bool) -> String {
    let mut tsv = Tsv::new("Figure 9: single aggregate complaint vs N labeled point complaints");
    tsv.header(&["n_complaints", "method", "auccr"]);
    // Training 1s mislabeled as 7 (the paper uses 10% on MNIST; our
    // synthetic digits need 50% before the model actually mispredicts).
    let (sess, truth, _) = setups::digits_q5(0.5, 42, quick, None);
    let budget = if quick {
        truth.len().min(20)
    } else {
        truth.len()
    };
    // Black line: the single aggregate complaint (Holistic).
    let (auc, _, _) = run_method(&sess, Method::Holistic, &truth, budget);
    tsv.row(&["1".into(), "AggComplaint(Holistic)".into(), f3(auc)]);

    // Red line: m point complaints = labeled query-set mispredictions
    // (TwoStep; equivalent to classic influence analysis).
    let (w, _, _) = corrupted_digits(0.5, 42, quick);
    let out = first_output(&sess);
    let table = sess.db.table("mnist").unwrap();
    let mispredicted: Vec<(usize, usize)> = (0..table.n_rows())
        .filter_map(|row| {
            let var = out.predvars.lookup("mnist", row)?;
            let truth_d = truth_digit(&w, table, row);
            (out.predvars.preds()[var as usize] != truth_d).then_some((row, truth_d))
        })
        .collect();
    let counts: Vec<usize> = if quick {
        vec![1, 10, 50]
    } else {
        vec![1, 10, 50, 100, 200, 400]
    };
    for &m in &counts {
        let m = m.min(mispredicted.len());
        if m == 0 {
            continue;
        }
        let complaints: Vec<Complaint> = mispredicted[..m]
            .iter()
            .map(|&(row, d)| Complaint::prediction_is("mnist", row, d))
            .collect();
        let mut s = DebugSession {
            queries: vec![QuerySpec::new(&sess.queries[0].sql).with_complaints(complaints)],
            db: sess.db.clone(),
            train: sess.train.clone(),
            model: sess.model.clone(),
            train_cfg: sess.train_cfg.clone(),
            influence: sess.influence.clone(),
            sqlstep: sess.sqlstep.clone(),
        };
        s.sqlstep.seed = 42;
        let (auc, _, _) = run_method(&s, Method::TwoStep, &truth, budget);
        tsv.row(&[m.to_string(), "PointComplaints(TwoStep)".into(), f3(auc)]);
    }
    tsv.comment(&format!(
        "total mispredictions available: {}",
        mispredicted.len()
    ));
    tsv.finish()
}

/// Figure 10: misspecified aggregate complaints (§6.6): Overshoot 1.2·X*,
/// Partial (t+X*)/2, Wrong 0.8·t.
pub fn fig10(quick: bool) -> String {
    let mut tsv = Tsv::new("Figure 10: effect of misspecified complaints");
    tsv.header(&["variant", "method", "target", "auccr"]);
    // Current (corrupted) output value t and ground truth X*.
    let (probe, truth, x_star) = setups::digits_q5(0.5, 42, quick, None);
    let t = scalar_f64(&first_output(&probe));
    let variants: Vec<(&str, f64)> = vec![
        ("Exact", x_star),
        ("Overshoot", 1.2 * x_star),
        ("Partial", (t + x_star) / 2.0),
        ("Wrong", 0.8 * t),
    ];
    let budget = if quick {
        truth.len().min(20)
    } else {
        truth.len()
    };
    for (name, target) in variants {
        for method in [Method::Holistic, Method::TwoStep, Method::Loss] {
            let (sess, truth2, _) = setups::digits_q5(0.5, 42, quick, Some(target));
            debug_assert_eq!(truth, truth2);
            let (auc, _, _) = run_method(&sess, method, &truth, budget);
            tsv.row(&[name.into(), method.name().into(), f3(target), f3(auc)]);
        }
    }
    tsv.finish()
}
