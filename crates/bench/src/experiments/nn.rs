//! Appendix D: debugging a neural network (Figures 11 and 12).
//!
//! The paper uses a small CNN; per DESIGN.md's substitution table we use a
//! one-hidden-layer ReLU MLP — also non-convex, exercising the identical
//! R-op + damped-CG code path.

use super::setups::corrupted_digits;
use crate::harness::{f3, Tsv};
use rain_core::prelude::*;
use rain_data::digits::{N_CLASSES, N_PIXELS};
use rain_influence::InfluenceConfig;
use rain_model::{Classifier, Mlp, SoftmaxRegression};
use rain_sql::Database;

fn nn_session(
    rate: f64,
    quick: bool,
    model: Box<dyn Classifier>,
    nonconvex: bool,
) -> (DebugSession, Vec<usize>) {
    let (w, train, truth) = corrupted_digits(rate, 42, quick);
    let all: Vec<usize> = (0..10).collect();
    let mut db = Database::new();
    db.register("mnist", w.query_table_for(&all, w.query.len()));
    let true_ones = w.query_rows_with_digits(&[1]).len() as f64;
    let mut sess = DebugSession::new(db, train, model).with_query(
        QuerySpec::new("SELECT COUNT(*) FROM mnist WHERE predict(*) = 1")
            .with_complaint(Complaint::scalar_eq(true_ones)),
    );
    if nonconvex {
        // Damping keeps CG well-posed on the indefinite MLP Hessian.
        sess.influence = InfluenceConfig::for_nonconvex();
    }
    (sess, truth)
}

/// Figures 11 & 12: AUCCR and per-iteration runtimes for the neural
/// network vs logistic (softmax) regression, by corruption rate.
pub fn figd(quick: bool) -> String {
    let mut tsv = Tsv::new("Appendix D (Figs 11-12): NN vs logistic regression");
    tsv.header(&[
        "model",
        "corruption",
        "method",
        "auccr",
        "train_s",
        "encode_s",
        "rank_s",
    ]);
    let rates: &[f64] = if quick { &[0.5] } else { &[0.3, 0.5, 0.7] };
    let hidden = if quick { 12 } else { 24 };
    for &rate in rates {
        let models: Vec<(&str, Box<dyn Classifier>, bool)> = vec![
            (
                "logistic",
                Box::new(SoftmaxRegression::new(N_PIXELS, N_CLASSES, 0.01)),
                false,
            ),
            (
                "mlp",
                Box::new(Mlp::new(N_PIXELS, hidden, N_CLASSES, 0.01, 42)),
                true,
            ),
        ];
        for (name, model, nonconvex) in models {
            for method in [Method::Loss, Method::TwoStep, Method::Holistic] {
                let (sess, truth) = nn_session(rate, quick, model.clone(), nonconvex);
                let budget = if quick {
                    truth.len().min(20)
                } else {
                    truth.len()
                };
                let report = sess.run(method, &RunConfig::paper(budget)).expect("run");
                let (t, e, r) = report.mean_timings();
                tsv.row(&[
                    name.into(),
                    f3(rate),
                    method.name().into(),
                    f3(report.auccr(&truth)),
                    f3(t),
                    f3(e),
                    f3(r),
                ]);
            }
        }
    }
    tsv.finish()
}
