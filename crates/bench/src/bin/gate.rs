//! Bench regression gate: fail CI when a headline speedup regresses.
//!
//! Reads the checked-in floors file (`bench_floors.json`, path as the
//! first argument) and the fresh `BENCH_*.json` artifacts the bench
//! smoke steps just wrote, and exits non-zero if any gated metric falls
//! below its floor. Floors live next to the artifacts:
//!
//! ```json
//! {
//!   "floors": [
//!     { "file": "BENCH_vexec.json", "metric": "join.speedup", "min": 3.0 },
//!     { "file": "BENCH_parallel.json", "metric": "join.scaling_4t",
//!       "min": 2.0, "min_cores": 4 }
//!   ]
//! }
//! ```
//!
//! - `file` is resolved relative to the floors file's directory (the
//!   bench binaries write artifacts into the package root).
//! - `metric` is a dot path into the artifact's JSON object.
//! - `min_cores` (optional) skips the floor — loudly — when the
//!   artifact's `host_cores` says the bench ran on fewer cores than the
//!   floor needs: parallel-scaling floors are meaningless on a 1-core
//!   runner, but must bite on real CI hardware.
//!
//! Everything else (missing file, missing metric, malformed floors) is a
//! hard failure: a gate that silently skips is no gate.

use rain_serve::json::{parse, Json};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// One gated metric, parsed from the floors file.
#[derive(Debug, Clone, PartialEq)]
struct Floor {
    file: String,
    metric: String,
    min: f64,
    min_cores: Option<usize>,
}

/// What evaluating one floor concluded.
#[derive(Debug, Clone, PartialEq)]
enum Verdict {
    Pass { value: f64 },
    Fail { reason: String },
    Skip { reason: String },
}

fn floors_from_json(v: &Json) -> Result<Vec<Floor>, String> {
    let list = v
        .get("floors")
        .and_then(Json::as_arr)
        .ok_or("floors file needs a top-level 'floors' array")?;
    let mut out = Vec::with_capacity(list.len());
    for (i, f) in list.iter().enumerate() {
        let field = |key: &str| {
            f.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or(format!("floor #{i}: missing string field '{key}'"))
        };
        out.push(Floor {
            file: field("file")?,
            metric: field("metric")?,
            min: f
                .get("min")
                .and_then(Json::as_f64)
                .ok_or(format!("floor #{i}: missing numeric field 'min'"))?,
            min_cores: f.get("min_cores").and_then(Json::as_usize),
        });
    }
    if out.is_empty() {
        return Err("floors file gates nothing".into());
    }
    Ok(out)
}

/// Navigate a dot path ("join.speedup") into nested objects.
fn metric_value(doc: &Json, path: &str) -> Option<f64> {
    let mut cur = doc;
    for seg in path.split('.') {
        cur = cur.get(seg)?;
    }
    cur.as_f64()
}

/// Evaluate one floor against its (already parsed) artifact.
fn check(floor: &Floor, doc: &Json) -> Verdict {
    if let Some(need) = floor.min_cores {
        match doc.get("host_cores").and_then(Json::as_usize) {
            Some(have) if have < need => {
                return Verdict::Skip {
                    reason: format!("bench ran on {have} core(s), floor needs {need}"),
                }
            }
            Some(_) => {}
            None => {
                return Verdict::Fail {
                    reason: "floor has 'min_cores' but artifact lacks 'host_cores'".into(),
                }
            }
        }
    }
    match metric_value(doc, &floor.metric) {
        Some(v) if v >= floor.min => Verdict::Pass { value: v },
        Some(v) => Verdict::Fail {
            reason: format!("{v:.3} < floor {:.3}", floor.min),
        },
        None => Verdict::Fail {
            reason: format!("metric '{}' not found", floor.metric),
        },
    }
}

fn run(floors_path: &Path) -> Result<bool, String> {
    let text = std::fs::read_to_string(floors_path)
        .map_err(|e| format!("cannot read {}: {e}", floors_path.display()))?;
    let floors = floors_from_json(
        &parse(&text).map_err(|e| format!("{}: invalid JSON: {e}", floors_path.display()))?,
    )?;
    let base = floors_path.parent().unwrap_or(Path::new("."));

    let mut ok = true;
    for floor in &floors {
        let artifact = base.join(&floor.file);
        let verdict = match std::fs::read_to_string(&artifact) {
            Ok(text) => match parse(&text) {
                Ok(doc) => check(floor, &doc),
                Err(e) => Verdict::Fail {
                    reason: format!("invalid JSON: {e}"),
                },
            },
            // A missing artifact means the bench step never ran: that is a
            // FAIL, never a skip — a `min_cores` floor may only skip after
            // reading `host_cores` from an artifact that actually exists.
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Verdict::Fail {
                reason: format!(
                    "missing artifact {}: bench step did not run",
                    artifact.display()
                ),
            },
            Err(e) => Verdict::Fail {
                reason: format!("cannot read {}: {e}", artifact.display()),
            },
        };
        let tag = format!("{}:{}", floor.file, floor.metric);
        match verdict {
            Verdict::Pass { value } => {
                println!("PASS  {tag}  {value:.3} >= {:.3}", floor.min)
            }
            Verdict::Skip { reason } => println!("SKIP  {tag}  {reason}"),
            Verdict::Fail { reason } => {
                ok = false;
                println!("FAIL  {tag}  {reason}");
            }
        }
    }
    Ok(ok)
}

fn main() -> ExitCode {
    let path = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("bench_floors.json"));
    match run(&path) {
        Ok(true) => {
            println!("bench gate: all floors hold");
            ExitCode::SUCCESS
        }
        Ok(false) => {
            eprintln!("bench gate: regression below a checked-in floor");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("bench gate: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(text: &str) -> Json {
        parse(text).unwrap()
    }

    #[test]
    fn metric_paths_navigate_nested_objects() {
        let d = doc(r#"{"join":{"speedup":4.5},"flat":2.0}"#);
        assert_eq!(metric_value(&d, "join.speedup"), Some(4.5));
        assert_eq!(metric_value(&d, "flat"), Some(2.0));
        assert_eq!(metric_value(&d, "join.missing"), None);
        assert_eq!(metric_value(&d, "nope.speedup"), None);
    }

    #[test]
    fn floors_parse_and_reject_malformed_files() {
        let v = doc(r#"{"floors":[
                {"file":"a.json","metric":"x.y","min":3.0},
                {"file":"b.json","metric":"z","min":2.0,"min_cores":4}]}"#);
        let floors = floors_from_json(&v).unwrap();
        assert_eq!(floors.len(), 2);
        assert_eq!(floors[1].min_cores, Some(4));
        assert!(floors_from_json(&doc(r#"{"floors":[]}"#)).is_err());
        assert!(floors_from_json(&doc(r#"{"floors":[{"metric":"m","min":1}]}"#)).is_err());
        assert!(floors_from_json(&doc(r#"{}"#)).is_err());
    }

    #[test]
    fn verdicts_pass_fail_and_core_skip() {
        let artifact = doc(r#"{"host_cores":1,"join":{"scaling_4t":0.94,"speedup":4.0}}"#);
        let plain = Floor {
            file: "f".into(),
            metric: "join.speedup".into(),
            min: 3.0,
            min_cores: None,
        };
        assert_eq!(check(&plain, &artifact), Verdict::Pass { value: 4.0 });

        let too_low = Floor {
            min: 5.0,
            ..plain.clone()
        };
        assert!(matches!(check(&too_low, &artifact), Verdict::Fail { .. }));

        // A scaling floor skips on an under-provisioned host…
        let scaling = Floor {
            metric: "join.scaling_4t".into(),
            min: 2.0,
            min_cores: Some(4),
            ..plain.clone()
        };
        assert!(matches!(check(&scaling, &artifact), Verdict::Skip { .. }));
        // …bites when the host had the cores…
        let beefy = doc(r#"{"host_cores":8,"join":{"scaling_4t":0.94}}"#);
        assert!(matches!(check(&scaling, &beefy), Verdict::Fail { .. }));
        let scaled = doc(r#"{"host_cores":8,"join":{"scaling_4t":2.7}}"#);
        assert_eq!(check(&scaling, &scaled), Verdict::Pass { value: 2.7 });
        // …and fails loudly when the artifact cannot prove its cores.
        let anon = doc(r#"{"join":{"scaling_4t":2.7}}"#);
        assert!(matches!(check(&scaling, &anon), Verdict::Fail { .. }));

        let missing = Floor {
            metric: "nope".into(),
            ..plain
        };
        assert!(matches!(check(&missing, &artifact), Verdict::Fail { .. }));
    }

    #[test]
    fn run_gates_real_files_end_to_end() {
        let dir = std::env::temp_dir().join(format!("rain-gate-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("BENCH_x.json"), r#"{"join":{"speedup":4.0}}"#).unwrap();
        let floors = dir.join("bench_floors.json");
        std::fs::write(
            &floors,
            r#"{"floors":[{"file":"BENCH_x.json","metric":"join.speedup","min":3.0}]}"#,
        )
        .unwrap();
        assert_eq!(run(&floors), Ok(true));
        std::fs::write(
            &floors,
            r#"{"floors":[
                {"file":"BENCH_x.json","metric":"join.speedup","min":5.0},
                {"file":"BENCH_missing.json","metric":"a.b","min":1.0}]}"#,
        )
        .unwrap();
        assert_eq!(run(&floors), Ok(false));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_artifact_fails_even_when_the_floor_could_skip_on_cores() {
        // A `min_cores` floor skips on an under-provisioned host, but that
        // requires reading `host_cores` from a real artifact. If the
        // artifact never got written (bench step didn't run), the gate must
        // FAIL — not silently skip the floor.
        let dir = std::env::temp_dir().join(format!("rain-gate-missing-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let floors = dir.join("bench_floors.json");
        std::fs::write(
            &floors,
            r#"{"floors":[{"file":"BENCH_parallel.json","metric":"join.scaling_4t",
                           "min":2.0,"min_cores":4}]}"#,
        )
        .unwrap();
        assert_eq!(run(&floors), Ok(false));
        // Once the artifact exists and proves it ran under-provisioned, the
        // same floor skips and the gate passes.
        std::fs::write(
            dir.join("BENCH_parallel.json"),
            r#"{"host_cores":1,"join":{"scaling_4t":0.9}}"#,
        )
        .unwrap();
        assert_eq!(run(&floors), Ok(true));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
