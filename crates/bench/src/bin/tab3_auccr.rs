//! Table 3: AUCCR on DBLP and ENRON.
fn main() {
    print!(
        "{}",
        rain_bench::experiments::dblp::tab3(rain_bench::is_quick())
    );
}
