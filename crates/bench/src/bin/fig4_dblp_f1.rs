//! Figure 4: querying-set F1 vs corruption rate.
fn main() {
    print!(
        "{}",
        rain_bench::experiments::dblp::fig4(rain_bench::is_quick())
    );
}
