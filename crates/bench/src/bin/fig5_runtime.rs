//! Figure 5: per-iteration runtime breakdown.
fn main() {
    print!(
        "{}",
        rain_bench::experiments::dblp::fig5(rain_bench::is_quick())
    );
}
