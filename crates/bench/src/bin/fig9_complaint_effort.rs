//! Figure 9: aggregate vs point complaints.
fn main() {
    print!(
        "{}",
        rain_bench::experiments::mnist::fig9(rain_bench::is_quick())
    );
}
