//! Figure 6(c,d): MNIST COUNT-over-join complaint.
fn main() {
    print!(
        "{}",
        rain_bench::experiments::mnist::fig6cd(rain_bench::is_quick())
    );
}
