//! Figure 3: DBLP recall curves by corruption rate.
fn main() {
    print!(
        "{}",
        rain_bench::experiments::dblp::fig3(rain_bench::is_quick())
    );
}
