//! Figure 10: misspecified complaints.
fn main() {
    print!(
        "{}",
        rain_bench::experiments::mnist::fig10(rain_bench::is_quick())
    );
}
