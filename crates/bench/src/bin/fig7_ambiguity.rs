//! Figure 7: ambiguity sweep.
fn main() {
    print!(
        "{}",
        rain_bench::experiments::mnist::fig7(rain_bench::is_quick())
    );
}
