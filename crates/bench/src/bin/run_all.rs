//! Run every experiment and write the TSVs under `results/`.
//!
//! ```text
//! cargo run --release -p rain-bench --bin run_all            # full suite
//! cargo run --release -p rain-bench --bin run_all -- --quick # smoke test
//! ```

use rain_bench::experiments as ex;
use std::io::Write;
use std::time::Instant;

/// An experiment entry: name and runner.
type Experiment = (&'static str, fn(bool) -> String);

fn main() {
    let quick = rain_bench::is_quick();
    let experiments: Vec<Experiment> = vec![
        ("fig4_dblp_f1", ex::dblp::fig4),
        ("fig3_dblp_recall", ex::dblp::fig3),
        ("fig5_runtime", ex::dblp::fig5),
        ("tab3_auccr", ex::dblp::tab3),
        ("fig6_mnist_join", ex::mnist::fig6ab),
        ("fig6_mnist_count", ex::mnist::fig6cd),
        ("fig6_mix_rate", ex::mnist::fig6_mix),
        ("fig7_ambiguity", ex::mnist::fig7),
        ("fig8_adult_multiquery", ex::adult::fig8),
        ("fig9_complaint_effort", ex::mnist::fig9),
        ("fig10_misspecified", ex::mnist::fig10),
        ("figd_nn", ex::nn::figd),
        ("thm_a1_ambiguity", ex::theory::thm_a1),
        ("thm_c1_value_of_complaints", ex::theory::thm_c1),
    ];
    std::fs::create_dir_all("results").expect("mkdir results");
    for (name, run) in experiments {
        let t0 = Instant::now();
        eprintln!("== {name} ==");
        let tsv = run(quick);
        let path = format!("results/{name}.tsv");
        let mut f = std::fs::File::create(&path).expect("create tsv");
        f.write_all(tsv.as_bytes()).expect("write tsv");
        println!("{tsv}");
        eprintln!("   -> {path} ({:.1}s)", t0.elapsed().as_secs_f64());
    }
}
