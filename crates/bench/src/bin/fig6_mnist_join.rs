//! Figure 6(a,b): MNIST join tuple complaints.
fn main() {
    print!(
        "{}",
        rain_bench::experiments::mnist::fig6ab(rain_bench::is_quick())
    );
}
