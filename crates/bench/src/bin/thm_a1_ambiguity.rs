//! Theorem A.1 empirical demonstration.
fn main() {
    print!(
        "{}",
        rain_bench::experiments::theory::thm_a1(rain_bench::is_quick())
    );
}
