//! Appendix D: neural-network debugging.
fn main() {
    print!(
        "{}",
        rain_bench::experiments::nn::figd(rain_bench::is_quick())
    );
}
