//! Figure 8: multi-query complaints on Adult.
fn main() {
    print!(
        "{}",
        rain_bench::experiments::adult::fig8(rain_bench::is_quick())
    );
}
