//! Section 6.3: overlapping-join mix-rate experiment.
fn main() {
    print!(
        "{}",
        rain_bench::experiments::mnist::fig6_mix(rain_bench::is_quick())
    );
}
