//! vexec-vs-tuple microbench on the DBLP join workload.
//!
//! Times the PR-1 *optimized* plan (predicate pushdown + pruning) on both
//! engines over two DBLP self-join shapes:
//!
//! - `join`: the model-free equi-join with a pushed-down filter — pure
//!   executor throughput (scan kernels + typed hash join).
//! - `full`: the same join with the paper's model predicate
//!   `predict(a) = 1` on top, in normal and debug (provenance) mode.
//!
//! Outputs the usual timing table plus a `BENCH_vexec.json` artifact
//! (path overridable via `RAIN_BENCH_JSON`) recording the speedups, which
//! CI uploads. Before timing, both engines' outputs are asserted equal.

use rain_bench::BenchGroup;
use rain_data::{dblp::DblpConfig, tables::dataset_to_table};
use rain_model::{train_lbfgs, LogisticRegression};
use rain_sql::table::Column;
use rain_sql::{bind, execute, optimize, parse_select, Database, Engine, ExecOptions, QueryPlan};

const JOIN_SQL: &str = "SELECT COUNT(*) FROM pairs_a a, pairs_b b \
                        WHERE a.id = b.id AND b.bucket < 2";
const FULL_SQL: &str = "SELECT COUNT(*) FROM pairs_a a, pairs_b b \
                        WHERE a.id = b.id AND a.bucket < 2 AND b.bucket < 4 \
                        AND predict(a) = 1";

fn plan_for(sql: &str, db: &Database) -> QueryPlan {
    let stmt = parse_select(sql).unwrap();
    let bound = bind(&stmt, db).unwrap();
    optimize(bound, db)
}

fn main() {
    let quick = rain_bench::is_quick();
    let n_query = 8000;
    let w = DblpConfig {
        n_train: 400,
        n_query,
        ..Default::default()
    }
    .generate(42);
    let mut model = LogisticRegression::new(17, 0.01);
    train_lbfgs(&mut model, &w.train, &Default::default());

    // The queried pairs, duplicated into two relations; `bucket` gives
    // the pushed-down filters something selective.
    let n = w.query.len();
    let bucket = Column::Int((0..n as i64).map(|i| i % 10).collect());
    let mut db = Database::new();
    db.register(
        "pairs_a",
        dataset_to_table(&w.query, vec![("bucket", bucket.clone())]),
    );
    db.register(
        "pairs_b",
        dataset_to_table(&w.query, vec![("bucket", bucket)]),
    );

    let cases = [
        ("join", plan_for(JOIN_SQL, &db), vec![("", false)]),
        (
            "full",
            plan_for(FULL_SQL, &db),
            vec![("_normal", false), ("_debug", true)],
        ),
    ];
    println!("{}", cases[1].1.explain_engine(&db, Engine::Vectorized));

    // Both engines must agree (rows AND provenance) before we time them.
    for (name, plan, modes) in &cases {
        for (_, debug) in modes {
            let opts = ExecOptions::with_debug(*debug);
            let t = execute(&db, &model, plan, opts.on(Engine::Tuple)).unwrap();
            let v = execute(&db, &model, plan, opts.on(Engine::Vectorized)).unwrap();
            assert_eq!(t.table.to_tsv(), v.table.to_tsv(), "{name}: rows disagree");
            assert_eq!(t.agg_cells, v.agg_cells, "{name}: provenance disagrees");
        }
    }

    let samples = if quick { 3 } else { 30 };
    let mut g = BenchGroup::new("dblp_join_vexec", samples);
    for (name, plan, modes) in &cases {
        for (suffix, debug) in modes {
            let opts = ExecOptions::with_debug(*debug);
            g.bench(&format!("tuple_{name}{suffix}"), || {
                execute(&db, &model, plan, opts.on(Engine::Tuple)).unwrap()
            });
            g.bench(&format!("vexec_{name}{suffix}"), || {
                execute(&db, &model, plan, opts.on(Engine::Vectorized)).unwrap()
            });
        }
    }
    g.finish();

    let mut json = format!(
        "{{\n  \"bench\": \"dblp_join_vexec\",\n  \"n_query\": {n_query},\n  \"samples\": {samples}"
    );
    for (name, _, modes) in &cases {
        for (suffix, _) in modes {
            let key = format!("{name}{suffix}");
            let (t, v) = (
                g.median_secs(&format!("tuple_{key}")).unwrap(),
                g.median_secs(&format!("vexec_{key}")).unwrap(),
            );
            println!(
                "speedup_{key}: {:.2}x (tuple {:.3} ms → vexec {:.3} ms)",
                t / v,
                t * 1e3,
                v * 1e3
            );
            json.push_str(&format!(
                ",\n  \"{key}\": {{ \"tuple_ms\": {:.6}, \"vexec_ms\": {:.6}, \"speedup\": {:.3} }}",
                t * 1e3,
                v * 1e3,
                t / v
            ));
        }
    }
    json.push_str("\n}\n");
    let path = std::env::var("RAIN_BENCH_JSON").unwrap_or_else(|_| "BENCH_vexec.json".to_string());
    std::fs::write(&path, &json).expect("write bench artifact");
    println!("wrote {path}");
}
