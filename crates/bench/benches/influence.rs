//! Influence-engine benches: Hessian-vector products, the conjugate-
//! gradient inverse-HVP (the paper's "Rank" phase dominator), and
//! per-record scoring at several training-set sizes.

use rain_bench::BenchGroup;
use rain_influence::{inverse_hvp, score_records, InfluenceConfig};
use rain_linalg::RainRng;
use rain_model::{train_lbfgs, Classifier, Dataset, LogisticRegression};

fn blobs(n: usize, dim: usize, seed: u64) -> Dataset {
    let mut rng = RainRng::seed_from_u64(seed);
    let mut rows = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        let y = rng.bernoulli(0.5) as usize;
        let mut x = rng.normal_vec(dim, 1.0);
        x[0] += if y == 1 { 1.5 } else { -1.5 };
        rows.push(x);
        labels.push(y);
    }
    let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
    Dataset::new(rain_linalg::Matrix::from_rows(&refs), labels, 2)
}

fn bench_influence() {
    let mut g = BenchGroup::new("influence", 20);
    for &n in &[500usize, 2000, 8000] {
        let data = blobs(n, 20, 42);
        let mut model = LogisticRegression::new(20, 0.01);
        train_lbfgs(&mut model, &data, &Default::default());
        let mut rng = RainRng::seed_from_u64(7);
        let v = rng.normal_vec(model.n_params(), 1.0);
        g.bench(&format!("hvp_{}", n), || model.hvp(&data, &v));
        let cfg = InfluenceConfig::default();
        g.bench(&format!("inverse_hvp_cg_{}", n), || {
            inverse_hvp(&model, &data, &v, &cfg)
        });
        let s = inverse_hvp(&model, &data, &v, &cfg).x;
        g.bench(&format!("score_records_4t_{}", n), || {
            score_records(&model, &data, &s, 4)
        });
    }
    g.finish();
}

fn main() {
    bench_influence();
}
