//! Serving-layer concurrency bench: requests/sec and p50/p95 latency of
//! cached debug-mode queries against a live `rain-serve` server, at 1, 4,
//! and 16 concurrent clients on the DBLP workload.
//!
//! Each client owns one session (its own catalog, model, and skeleton
//! cache), which is the serving layer's scaling unit: requests serialize
//! per session and parallelize across sessions, so throughput should grow
//! from 1 → 4 clients on multi-core hardware. Results land in
//! `BENCH_serve.json` (path overridable via `RAIN_BENCH_JSON`), which CI
//! uploads next to the vexec/iteration artifacts. The bench doubles as a
//! smoke test: every response is checked for the expected count and for
//! cache-hit behavior, so a wrong answer panics the job.

use rain_data::dblp::DblpConfig;
use rain_serve::json::Json;
use rain_serve::{start, Client, ServerConfig};
use std::net::SocketAddr;
use std::time::Instant;

const SQL: &str = "SELECT COUNT(*) FROM dblp WHERE predict(*) = 1";

/// Per-concurrency-level results.
struct Level {
    clients: usize,
    rps: f64,
    p50_ms: f64,
    p95_ms: f64,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

/// Set up one session per client: register the DBLP table, upload the
/// training set, and warm nothing — the first query of the run pays the
/// miss, the rest must hit.
fn setup_sessions(addr: SocketAddr, n: usize, table: &Json, train: &Json) {
    let mut client = Client::connect(addr).expect("connect for setup");
    for si in 0..n {
        let name = format!("bench-{si}");
        client
            .post_ok(
                "/sessions",
                &Json::obj(vec![
                    ("name", Json::str(name.clone())),
                    (
                        "model",
                        Json::obj(vec![
                            ("kind", Json::str("logistic")),
                            ("dim", Json::num(rain_data::dblp::N_FEATURES as f64)),
                            ("l2", Json::num(0.01)),
                        ]),
                    ),
                ]),
            )
            .expect("create session");
        client
            .post_ok(&format!("/sessions/{name}/tables"), table)
            .expect("register table");
        client
            .post_ok(&format!("/sessions/{name}/train"), train)
            .expect("upload train");
    }
}

/// Drive `clients` threads, `requests` queries each, against their own
/// sessions; returns the latency distribution and wall time.
fn drive(addr: SocketAddr, clients: usize, requests: usize) -> Level {
    let t0 = Instant::now();
    let threads: Vec<_> = (0..clients)
        .map(|ci| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let path = format!("/sessions/bench-{ci}/query");
                let body = Json::obj(vec![("sql", Json::str(SQL))]);
                let mut latencies = Vec::with_capacity(requests);
                let mut count = None;
                for _ in 0..requests {
                    let t = Instant::now();
                    let resp = client.post_ok(&path, &body).expect("query");
                    latencies.push(t.elapsed().as_secs_f64());
                    // Smoke checks: stable count, warm cache after the
                    // first round (every level reuses the sessions, so
                    // only the very first query of the bench misses).
                    let rows = resp.get("result").unwrap().get("rows").unwrap();
                    let c = rows.as_arr().unwrap()[0].as_arr().unwrap()[0]
                        .as_i64()
                        .unwrap();
                    match count {
                        None => count = Some(c),
                        Some(prev) => assert_eq!(prev, c, "count drifted between requests"),
                    }
                    let hits = resp
                        .get("cache_stats")
                        .unwrap()
                        .get("hits")
                        .unwrap()
                        .as_i64()
                        .unwrap();
                    assert!(
                        hits + 1 >= latencies.len() as i64,
                        "repeat queries must hit the skeleton cache"
                    );
                }
                latencies
            })
        })
        .collect();
    let mut latencies: Vec<f64> = threads
        .into_iter()
        .flat_map(|t| t.join().expect("bench client panicked"))
        .collect();
    let wall = t0.elapsed().as_secs_f64();
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latency"));
    Level {
        clients,
        rps: latencies.len() as f64 / wall,
        p50_ms: percentile(&latencies, 0.50) * 1e3,
        p95_ms: percentile(&latencies, 0.95) * 1e3,
    }
}

fn main() {
    let quick = rain_bench::is_quick();
    let (n_query, requests) = if quick { (300, 25) } else { (1500, 150) };

    // One shared generated workload; every session registers the same
    // table so per-session results are comparable.
    let w = DblpConfig {
        n_train: 400,
        n_query,
        ..Default::default()
    }
    .generate(42);
    let table = rain_serve::protocol::table_to_json("dblp", &w.query_table());
    let train = rain_serve::protocol::dataset_to_json(&w.train);

    let server = start(ServerConfig {
        job_workers: 2,
        ..Default::default()
    })
    .expect("start server");
    let addr = server.addr();
    const MAX_CLIENTS: usize = 16;
    setup_sessions(addr, MAX_CLIENTS, &table, &train);

    let mut levels = Vec::new();
    for &clients in &[1usize, 4, 16] {
        let level = drive(addr, clients, requests);
        println!(
            "{:>2} clients: {:>8.1} req/s   p50 {:>7.3} ms   p95 {:>7.3} ms",
            level.clients, level.rps, level.p50_ms, level.p95_ms
        );
        levels.push(level);
    }
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let scaling_1_to_4 = levels[1].rps / levels[0].rps;
    println!("throughput scaling 1→4 clients: {scaling_1_to_4:.2}x on {cores} core(s)");

    let mut json = format!(
        "{{\n  \"bench\": \"serve_concurrency\",\n  \"workload\": \"dblp\",\n  \"n_query\": {n_query},\n  \"requests_per_client\": {requests},\n  \"cores\": {cores},\n  \"scaling_1_to_4\": {scaling_1_to_4:.3},\n  \"levels\": ["
    );
    for (i, l) in levels.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!(
            "\n    {{ \"clients\": {}, \"rps\": {:.3}, \"p50_ms\": {:.6}, \"p95_ms\": {:.6} }}",
            l.clients, l.rps, l.p50_ms, l.p95_ms
        ));
    }
    json.push_str("\n  ]\n}\n");
    let path = std::env::var("RAIN_BENCH_JSON").unwrap_or_else(|_| "BENCH_serve.json".to_string());
    std::fs::write(&path, &json).expect("write bench artifact");
    println!("wrote {path}");
    server.shutdown();
}
