//! Instrumentation-overhead bench on the DBLP join workload.
//!
//! Times the model-free DBLP equi-join (the `BENCH_parallel.json` join
//! shape) twice: with tracing disabled (the default — every span is
//! inert, no clock reads) and with a live trace harvested per run the
//! way `?profile=1` does it (activate, root span, execute, take the
//! subtree). Before timing, the two modes' outputs are asserted
//! bit-identical — instrumentation is a pure observer.
//!
//! Writes `BENCH_obs.json` (path overridable via `RAIN_BENCH_JSON`)
//! with the headline `overhead.ratio = disabled_ms / enabled_ms`; the
//! regression gate floors it at 0.95, i.e. tracing may cost at most
//! ~5% on the end-to-end join.

use rain_bench::BenchGroup;
use rain_data::{dblp::DblpConfig, tables::dataset_to_table};
use rain_model::{train_lbfgs, LogisticRegression};
use rain_sql::table::Column;
use rain_sql::{bind, execute, optimize, parse_select, Database, ExecOptions, QueryPlan};

const JOIN_SQL: &str = "SELECT COUNT(*) FROM pairs_a a, pairs_b b \
                        WHERE a.id = b.id AND b.bucket < 2";

fn plan_for(sql: &str, db: &Database) -> QueryPlan {
    let stmt = parse_select(sql).unwrap();
    let bound = bind(&stmt, db).unwrap();
    optimize(bound, db)
}

fn main() {
    let quick = rain_bench::is_quick();
    let n_query = if quick { 150_000 } else { 300_000 };
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let w = DblpConfig {
        n_train: 400,
        n_query,
        ..Default::default()
    }
    .generate(42);
    let mut model = LogisticRegression::new(17, 0.01);
    train_lbfgs(&mut model, &w.train, &Default::default());

    let n = w.query.len();
    let bucket = |n: usize| Column::Int((0..n as i64).map(|i| i % 10).collect());
    let n_build = (n / 5).min(20_000);
    let b_side = w.query.select(&(0..n_build).collect::<Vec<_>>());
    let mut db = Database::new();
    db.register(
        "pairs_a",
        dataset_to_table(&w.query, vec![("bucket", bucket(n))]),
    );
    db.register(
        "pairs_b",
        dataset_to_table(&b_side, vec![("bucket", bucket(n_build))]),
    );
    let plan = plan_for(JOIN_SQL, &db);
    let opts = ExecOptions::default;

    // One profiled execution, exactly as the serving layer runs it.
    let run_traced = || {
        let _on = rain_obs::activate();
        let root = rain_obs::Span::enter("query");
        let root_id = root.id();
        let out = execute(&db, &model, &plan, opts()).unwrap();
        drop(root);
        (out, rain_obs::take_subtree(root_id))
    };

    // Correctness before timing: tracing must not perturb results, and
    // the harvested tree must actually cover the execution.
    let baseline = execute(&db, &model, &plan, opts()).unwrap();
    let (traced_out, tree) = run_traced();
    assert_eq!(
        baseline.table.to_tsv(),
        traced_out.table.to_tsv(),
        "tracing changed query results"
    );
    let tree = tree.expect("no trace harvested");
    assert!(tree.find("join").is_some(), "trace misses the join span");
    assert!(tree.find("scan").is_some(), "trace misses the scan span");
    assert!(!rain_obs::enabled(), "trace guard leaked past its scope");

    let samples = if quick { 3 } else { 20 };
    let mut g = BenchGroup::new("obs_overhead", samples);
    g.bench("join_disabled", || {
        execute(&db, &model, &plan, opts()).unwrap()
    });
    g.bench("join_enabled", &run_traced);
    g.finish();

    let disabled_ms = g.median_secs("join_disabled").unwrap() * 1e3;
    let enabled_ms = g.median_secs("join_enabled").unwrap() * 1e3;
    let ratio = disabled_ms / enabled_ms;
    println!("host_cores: {host_cores}");
    println!(
        "instrumentation overhead: {:.2}% ({disabled_ms:.3} ms off -> {enabled_ms:.3} ms on, ratio {ratio:.3})",
        (enabled_ms / disabled_ms - 1.0) * 100.0
    );

    let json = format!(
        "{{\n  \"bench\": \"obs_overhead\",\n  \"n_query\": {n_query},\n  \
         \"samples\": {samples},\n  \"host_cores\": {host_cores},\n  \
         \"trace_spans\": {},\n  \
         \"overhead\": {{ \"disabled_ms\": {disabled_ms:.6}, \
         \"enabled_ms\": {enabled_ms:.6}, \"ratio\": {ratio:.3} }}\n}}\n",
        tree.size()
    );
    let path = std::env::var("RAIN_BENCH_JSON").unwrap_or_else(|_| "BENCH_obs.json".to_string());
    std::fs::write(&path, &json).expect("write bench artifact");
    println!("wrote {path}");
}
