//! Instrumentation-overhead bench on the DBLP join workload.
//!
//! Times the model-free DBLP equi-join (the `BENCH_parallel.json` join
//! shape) twice: with tracing disabled (the default — every span is
//! inert, no clock reads) and with a live trace harvested per run the
//! way `?profile=1` does it (activate, root span, execute, take the
//! subtree). Before timing, the two modes' outputs are asserted
//! bit-identical — instrumentation is a pure observer.
//!
//! A second section measures **always-on sampling** end to end: the
//! 16-client serve workload (one session per client, cached debug-mode
//! queries) with per-session sampling off versus sampling 1-in-16 into
//! the profile ring — the serving layer's production default.
//!
//! Writes `BENCH_obs.json` (path overridable via `RAIN_BENCH_JSON`)
//! with the headline `overhead.ratio = disabled_ms / enabled_ms` and
//! `sampling.ratio` (same definition, serve workload); the regression
//! gate floors both at 0.95, i.e. tracing/sampling may cost at most
//! ~5% end to end.

use rain_bench::BenchGroup;
use rain_data::{dblp::DblpConfig, tables::dataset_to_table};
use rain_model::{train_lbfgs, LogisticRegression};
use rain_serve::json::Json;
use rain_serve::{start, Client, ServerConfig};
use rain_sql::table::Column;
use rain_sql::{bind, execute, optimize, parse_select, Database, ExecOptions, QueryPlan};
use std::net::SocketAddr;

const JOIN_SQL: &str = "SELECT COUNT(*) FROM pairs_a a, pairs_b b \
                        WHERE a.id = b.id AND b.bucket < 2";

fn plan_for(sql: &str, db: &Database) -> QueryPlan {
    let stmt = parse_select(sql).unwrap();
    let bound = bind(&stmt, db).unwrap();
    optimize(bound, db)
}

const SERVE_CLIENTS: usize = 16;
const SERVE_SQL: &str = "SELECT COUNT(*) FROM dblp WHERE predict(*) = 1";

/// One session per client, prefixed `prefix-`, with explicit sampling
/// knobs (`slow_ms` pushed out of reach so only the 1-in-N sampler
/// differs between the two phases).
fn serve_sessions(addr: SocketAddr, prefix: &str, sample_every: f64, table: &Json, train: &Json) {
    let mut client = Client::connect(addr).expect("connect for setup");
    for si in 0..SERVE_CLIENTS {
        let name = format!("{prefix}-{si}");
        client
            .post_ok(
                "/sessions",
                &Json::obj(vec![
                    ("name", Json::str(name.clone())),
                    (
                        "model",
                        Json::obj(vec![
                            ("kind", Json::str("logistic")),
                            ("dim", Json::num(rain_data::dblp::N_FEATURES as f64)),
                            ("l2", Json::num(0.01)),
                        ]),
                    ),
                    ("sample_every", Json::num(sample_every)),
                    ("slow_ms", Json::num(3_600_000.0)),
                ]),
            )
            .expect("create session");
        client
            .post_ok(&format!("/sessions/{name}/tables"), table)
            .expect("register table");
        client
            .post_ok(&format!("/sessions/{name}/train"), train)
            .expect("upload train");
    }
}

/// Drive 16 client threads, `requests` cached queries each, against the
/// `prefix-` sessions; returns when every thread is done.
fn serve_drive(addr: SocketAddr, prefix: &str, requests: usize) {
    let threads: Vec<_> = (0..SERVE_CLIENTS)
        .map(|ci| {
            let path = format!("/sessions/{prefix}-{ci}/query");
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let body = Json::obj(vec![("sql", Json::str(SERVE_SQL))]);
                for _ in 0..requests {
                    client.post_ok(&path, &body).expect("query");
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("bench client panicked");
    }
}

fn main() {
    let quick = rain_bench::is_quick();
    let n_query = if quick { 150_000 } else { 300_000 };
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let w = DblpConfig {
        n_train: 400,
        n_query,
        ..Default::default()
    }
    .generate(42);
    let mut model = LogisticRegression::new(17, 0.01);
    train_lbfgs(&mut model, &w.train, &Default::default());

    let n = w.query.len();
    let bucket = |n: usize| Column::Int((0..n as i64).map(|i| i % 10).collect());
    let n_build = (n / 5).min(20_000);
    let b_side = w.query.select(&(0..n_build).collect::<Vec<_>>());
    let mut db = Database::new();
    db.register(
        "pairs_a",
        dataset_to_table(&w.query, vec![("bucket", bucket(n))]),
    );
    db.register(
        "pairs_b",
        dataset_to_table(&b_side, vec![("bucket", bucket(n_build))]),
    );
    let plan = plan_for(JOIN_SQL, &db);
    let opts = ExecOptions::default;

    // One profiled execution, exactly as the serving layer runs it.
    let run_traced = || {
        let _on = rain_obs::activate();
        let root = rain_obs::Span::enter("query");
        let root_id = root.id();
        let out = execute(&db, &model, &plan, opts()).unwrap();
        drop(root);
        (out, rain_obs::take_subtree(root_id))
    };

    // Correctness before timing: tracing must not perturb results, and
    // the harvested tree must actually cover the execution.
    let baseline = execute(&db, &model, &plan, opts()).unwrap();
    let (traced_out, tree) = run_traced();
    assert_eq!(
        baseline.table.to_tsv(),
        traced_out.table.to_tsv(),
        "tracing changed query results"
    );
    let tree = tree.expect("no trace harvested");
    assert!(tree.find("join").is_some(), "trace misses the join span");
    assert!(tree.find("scan").is_some(), "trace misses the scan span");
    assert!(!rain_obs::enabled(), "trace guard leaked past its scope");

    let samples = if quick { 3 } else { 20 };
    let mut g = BenchGroup::new("obs_overhead", samples);
    g.bench("join_disabled", || {
        execute(&db, &model, &plan, opts()).unwrap()
    });
    g.bench("join_enabled", &run_traced);
    g.finish();

    let disabled_ms = g.median_secs("join_disabled").unwrap() * 1e3;
    let enabled_ms = g.median_secs("join_enabled").unwrap() * 1e3;
    let ratio = disabled_ms / enabled_ms;
    println!("host_cores: {host_cores}");
    println!(
        "instrumentation overhead: {:.2}% ({disabled_ms:.3} ms off -> {enabled_ms:.3} ms on, ratio {ratio:.3})",
        (enabled_ms / disabled_ms - 1.0) * 100.0
    );

    // --- Always-on sampling on the 16-client serve workload ---
    let (serve_rows, serve_requests) = if quick { (300, 20) } else { (1500, 80) };
    let sw = DblpConfig {
        n_train: 400,
        n_query: serve_rows,
        ..Default::default()
    }
    .generate(42);
    let table = rain_serve::protocol::table_to_json("dblp", &sw.query_table());
    let train = rain_serve::protocol::dataset_to_json(&sw.train);
    let server = start(ServerConfig {
        job_workers: 2,
        ..Default::default()
    })
    .expect("start server");
    let addr = server.addr();
    serve_sessions(addr, "off", 0.0, &table, &train);
    serve_sessions(addr, "on", 16.0, &table, &train);
    // Warm both session sets (skeleton-cache misses happen here).
    serve_drive(addr, "off", 1);
    serve_drive(addr, "on", 1);

    let mut sg = BenchGroup::new("obs_sampling", samples);
    sg.bench("serve_sampling_off", || {
        serve_drive(addr, "off", serve_requests)
    });
    sg.bench("serve_sampling_on", || {
        serve_drive(addr, "on", serve_requests)
    });
    sg.finish();
    let s_disabled_ms = sg.median_secs("serve_sampling_off").unwrap() * 1e3;
    let s_enabled_ms = sg.median_secs("serve_sampling_on").unwrap() * 1e3;
    let s_ratio = s_disabled_ms / s_enabled_ms;
    println!(
        "sampling overhead: {:.2}% ({s_disabled_ms:.3} ms off -> {s_enabled_ms:.3} ms on, ratio {s_ratio:.3})",
        (s_enabled_ms / s_disabled_ms - 1.0) * 100.0
    );
    // The enabled phase must actually have filled the profile ring —
    // otherwise the "overhead" was measured against a sampler that
    // never fired.
    let mut probe = Client::connect(addr).expect("connect");
    let profiles = probe.get_ok("/debug/profiles").expect("profiles");
    let captured = profiles
        .get("recent")
        .and_then(Json::as_arr)
        .map_or(0, <[Json]>::len);
    assert!(captured > 0, "sampling-on phase captured no profiles");
    server.shutdown();

    let json = format!(
        "{{\n  \"bench\": \"obs_overhead\",\n  \"n_query\": {n_query},\n  \
         \"samples\": {samples},\n  \"host_cores\": {host_cores},\n  \
         \"trace_spans\": {},\n  \
         \"overhead\": {{ \"disabled_ms\": {disabled_ms:.6}, \
         \"enabled_ms\": {enabled_ms:.6}, \"ratio\": {ratio:.3} }},\n  \
         \"sampling\": {{ \"clients\": {SERVE_CLIENTS}, \
         \"requests_per_client\": {serve_requests}, \
         \"profiles_captured\": {captured}, \
         \"disabled_ms\": {s_disabled_ms:.6}, \
         \"enabled_ms\": {s_enabled_ms:.6}, \"ratio\": {s_ratio:.3} }}\n}}\n",
        tree.size()
    );
    let path = std::env::var("RAIN_BENCH_JSON").unwrap_or_else(|_| "BENCH_obs.json".to_string());
    std::fs::write(&path, &json).expect("write bench artifact");
    println!("wrote {path}");
}
