//! Durability bench: commitlog append throughput and boot-time recovery
//! on a 200k-row DBLP-like catalog (40k under `RAIN_QUICK=1`).
//!
//! The workload mirrors the serving layer's ingestion path: one
//! `RegisterTable` record for the seed batch, then `AppendRows` records
//! of `BATCH` rows (ids + 17-D feature vectors) with one fsync'd commit
//! each — exactly what `POST /sessions/{s}/tables/{t}/append` costs per
//! request. Recovery is timed both log-only (full replay) and from a
//! snapshot covering the whole log (the steady-state boot shape).
//!
//! Before any timing, the recovered catalog is asserted bit-identical to
//! a reference replay (row count, `(gen, delta)` version, feature
//! matrix) — a bench that recovers the wrong state must panic, not post
//! a throughput number.
//!
//! Writes `BENCH_storage.json` (path overridable via `RAIN_BENCH_JSON`)
//! with the headline `append.rows_per_s` and `recovery.rows_per_s`; the
//! regression gate floors both.

use rain_data::dblp::DblpConfig;
use rain_linalg::Matrix;
use rain_sql::table::{ColType, Column, Schema, Table};
use rain_sql::Value;
use rain_storage::{Record, RecoveredState, SessionStore, SnapshotState};
use std::path::PathBuf;
use std::time::Instant;

const BATCH: usize = 1_000;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rain-bench-storage-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The seed batch as a registered table: id column + feature matrix.
fn seed_table(ids: &[usize], feats: &Matrix) -> Table {
    let rows: Vec<&[f64]> = (0..ids.len()).map(|i| feats.row(i)).collect();
    Table::from_columns(
        Schema::new(&[("id", ColType::Int)]),
        vec![Column::Int(ids.iter().map(|&i| i as i64).collect())],
    )
    .with_features(Matrix::from_rows(&rows))
}

/// One ingestion batch: rows `[lo, hi)` as an `AppendRows` record.
fn append_record(ids: &[usize], feats: &Matrix, lo: usize, hi: usize) -> Record {
    Record::AppendRows {
        name: "dblp".into(),
        rows: (lo..hi).map(|i| vec![Value::Int(ids[i] as i64)]).collect(),
        features: Some((lo..hi).map(|i| feats.row(i).to_vec()).collect()),
    }
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

fn main() {
    let quick = rain_bench::is_quick();
    let n_rows = if quick { 40_000 } else { 200_000 };
    let recovery_samples = if quick { 3 } else { 5 };
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let w = DblpConfig {
        n_train: 200,
        n_query: n_rows,
        ..Default::default()
    }
    .generate(42);
    let ids = w.query.ids();
    let feats = w.query.features();

    // --- Append phase: register the seed batch, then one fsync'd commit
    // per BATCH-row append record (the wire handler's per-request cost).
    let dir = temp_dir("append");
    let t0 = Instant::now();
    let mut store = SessionStore::open(&dir).unwrap();
    store
        .append_commit(&Record::RegisterTable {
            name: "dblp".into(),
            table: seed_table(&ids[..BATCH], feats),
        })
        .unwrap();
    let mut batches = 0u64;
    let mut lo = BATCH;
    while lo < n_rows {
        let hi = (lo + BATCH).min(n_rows);
        store
            .append_commit(&append_record(ids, feats, lo, hi))
            .unwrap();
        batches += 1;
        lo = hi;
    }
    let append_s = t0.elapsed().as_secs_f64();
    let appended = n_rows - BATCH;
    let append_rows_per_s = appended as f64 / append_s;
    let log_bytes = store.log_bytes();
    drop(store);

    // --- Correctness before timing: recovery must reproduce the full
    // catalog bit-identically (reference replay of the same records).
    let mut reference = RecoveredState::empty();
    reference
        .apply(Record::RegisterTable {
            name: "dblp".into(),
            table: seed_table(&ids[..BATCH], feats),
        })
        .unwrap();
    let mut lo = BATCH;
    while lo < n_rows {
        let hi = (lo + BATCH).min(n_rows);
        reference.apply(append_record(ids, feats, lo, hi)).unwrap();
        lo = hi;
    }
    {
        let mut store = SessionStore::open(&dir).unwrap();
        let recovered = store.recover().unwrap();
        let id = recovered.db.resolve("dblp").unwrap();
        let ref_id = reference.db.resolve("dblp").unwrap();
        assert_eq!(recovered.db.table_by_id(id).n_rows(), n_rows);
        assert_eq!(
            recovered.db.table_version(id),
            reference.db.table_version(ref_id),
            "recovery lost the (gen, delta) version"
        );
        let got = recovered.db.table_by_id(id).features().unwrap();
        let want = reference.db.table_by_id(ref_id).features().unwrap();
        assert_eq!(got.rows(), want.rows());
        for r in [0, n_rows / 2, n_rows - 1] {
            assert_eq!(
                got.row(r).iter().map(|x| x.to_bits()).collect::<Vec<u64>>(),
                want.row(r)
                    .iter()
                    .map(|x| x.to_bits())
                    .collect::<Vec<u64>>(),
                "recovered features diverge at row {r}"
            );
        }
    }

    // --- Recovery phase, log-only: full replay of every record.
    let mut replay_samples: Vec<f64> = (0..recovery_samples)
        .map(|_| {
            let t = Instant::now();
            let mut store = SessionStore::open(&dir).unwrap();
            let recovered = store.recover().unwrap();
            assert_eq!(recovered.stats.replayed_records, batches + 1);
            t.elapsed().as_secs_f64()
        })
        .collect();
    let replay_s = median(&mut replay_samples);
    let replay_rows_per_s = n_rows as f64 / replay_s;

    // --- Recovery phase, from a snapshot covering the whole log.
    {
        let mut store = SessionStore::open(&dir).unwrap();
        let state = store.recover().unwrap();
        let snap = SnapshotState {
            spec: "{}".into(),
            params: Vec::new(),
            train: rain_model::Dataset::with_ids(Matrix::zeros(0, 0), vec![], vec![], 2),
            tables: state
                .db
                .entries()
                .map(|e| (e.name.clone(), e.version, e.table.clone()))
                .collect(),
            indexes: state
                .db
                .entries()
                .flat_map(|e| {
                    e.indexes
                        .iter()
                        .map(|ix| (e.name.clone(), ix.column.clone(), ix.kind.code()))
                })
                .collect(),
        };
        store.snapshot(&snap).unwrap();
    }
    let mut snap_samples: Vec<f64> = (0..recovery_samples)
        .map(|_| {
            let t = Instant::now();
            let mut store = SessionStore::open(&dir).unwrap();
            let recovered = store.recover().unwrap();
            assert_eq!(
                recovered.stats.replayed_records, 0,
                "snapshot must cover the log"
            );
            assert_eq!(
                recovered
                    .db
                    .table_by_id(recovered.db.resolve("dblp").unwrap())
                    .n_rows(),
                n_rows
            );
            t.elapsed().as_secs_f64()
        })
        .collect();
    let snap_s = median(&mut snap_samples);
    let snap_rows_per_s = n_rows as f64 / snap_s;

    println!("host_cores: {host_cores}");
    println!(
        "append: {appended} rows in {append_s:.3} s ({append_rows_per_s:.0} rows/s, \
         {batches} fsync'd batches, {log_bytes} log bytes)"
    );
    println!("recovery (log replay): {replay_s:.3} s ({replay_rows_per_s:.0} rows/s)");
    println!("recovery (snapshot):   {snap_s:.3} s ({snap_rows_per_s:.0} rows/s)");

    let json = format!(
        "{{\n  \"bench\": \"storage\",\n  \"n_rows\": {n_rows},\n  \
         \"batch_rows\": {BATCH},\n  \"host_cores\": {host_cores},\n  \
         \"append\": {{ \"rows\": {appended}, \"batches\": {batches}, \
         \"seconds\": {append_s:.6}, \"rows_per_s\": {append_rows_per_s:.1}, \
         \"log_bytes\": {log_bytes} }},\n  \
         \"recovery\": {{ \"seconds\": {replay_s:.6}, \
         \"rows_per_s\": {replay_rows_per_s:.1} }},\n  \
         \"snapshot_recovery\": {{ \"seconds\": {snap_s:.6}, \
         \"rows_per_s\": {snap_rows_per_s:.1} }}\n}}\n"
    );
    let path =
        std::env::var("RAIN_BENCH_JSON").unwrap_or_else(|_| "BENCH_storage.json".to_string());
    std::fs::write(&path, &json).expect("write bench artifact");
    println!("wrote {path}");
    let _ = std::fs::remove_dir_all(&dir);
}
