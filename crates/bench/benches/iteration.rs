//! Figure 5 / Figure 12 microbenches: the cost of one train–rank–fix
//! iteration, split by phase (train / encode / rank), for Loss, TwoStep,
//! and Holistic on the DBLP workload — plus the incremental-vs-full
//! re-execution comparison for the loop's encode phase.
//!
//! The incremental section pits a prepared skeleton's per-iteration
//! `refresh` against a full debug-mode `execute` on the same plans (the
//! paper's count complaint and a self-join with a model predicate),
//! asserts the outputs are bit-identical before timing, and writes the
//! speedups to `BENCH_iteration.json` (path overridable via
//! `RAIN_BENCH_JSON`), which CI uploads as the loop's bench trajectory.

use rain_bench::BenchGroup;
use rain_core::prelude::*;
use rain_core::rank::{rank, Method as M, RankContext};
use rain_data::dblp::DblpConfig;
use rain_data::flip_labels_where;
use rain_data::tables::dataset_to_table;
use rain_linalg::{Matrix, RainRng};
use rain_model::{train_lbfgs, Classifier, LbfgsConfig, LogisticRegression};
use rain_sql::table::{ColType, Column, Schema, Table};
use rain_sql::{
    bind, execute, optimize, parse_select, prepare, run_query, Database, Engine, ExecOptions,
    QueryPlan, ScoreMemo,
};

struct Fixture {
    db: Database,
    train: rain_model::Dataset,
    model: LogisticRegression,
    queries: Vec<QuerySpec>,
    out: rain_sql::QueryOutput,
}

fn fixture() -> Fixture {
    let w = DblpConfig {
        n_train: 1000,
        n_query: 500,
        ..Default::default()
    }
    .generate(42);
    let mut train = w.train.clone();
    flip_labels_where(&mut train, |_, _, y| y == 1, 0.5, |_| 0, 42);
    let mut db = Database::new();
    db.register("dblp", w.query_table());
    let mut model = LogisticRegression::new(17, 0.01);
    train_lbfgs(&mut model, &train, &LbfgsConfig::default());
    let sql = "SELECT COUNT(*) FROM dblp WHERE predict(*) = 1";
    let out = run_query(&db, &model, sql, ExecOptions::debug()).unwrap();
    let queries =
        vec![QuerySpec::new(sql).with_complaint(Complaint::scalar_eq(w.true_match_count() as f64))];
    Fixture {
        db,
        train,
        model,
        queries,
        out,
    }
}

fn bench_iteration() {
    let f = fixture();
    let mut g = BenchGroup::new("iteration_phase", 10);

    g.bench("train_warm", || {
        let mut m = f.model.clone();
        train_lbfgs(&mut m, &f.train, &LbfgsConfig::warm())
    });
    g.bench("exec_debug_mode", || {
        run_query(&f.db, &f.model, &f.queries[0].sql, ExecOptions::debug()).unwrap()
    });
    for method in [M::Loss, M::TwoStep, M::Holistic] {
        let influence = Default::default();
        let sqlstep = Default::default();
        g.bench(&format!("rank_{}", method.name()), || {
            let ctx = RankContext {
                db: &f.db,
                model: &f.model,
                train: &f.train,
                outputs: std::slice::from_ref(&f.out),
                queries: &f.queries,
                influence: &influence,
                sqlstep: &sqlstep,
            };
            rank(method, &ctx).unwrap()
        });
    }
    g.finish();
}

fn plan_for(sql: &str, db: &Database) -> QueryPlan {
    let stmt = parse_select(sql).unwrap();
    let bound = bind(&stmt, db).unwrap();
    optimize(bound, db)
}

/// Incremental refresh vs full debug-mode re-execution, per iteration of
/// the loop: the tentpole comparison, exported as `BENCH_iteration.json`.
/// Returns the artifact's JSON body (unterminated — `main` appends the
/// memo section before closing and writing it).
fn bench_incremental() -> String {
    let quick = rain_bench::is_quick();
    let n_query = 2000;
    let w = DblpConfig {
        n_train: 400,
        n_query,
        ..Default::default()
    }
    .generate(42);
    let mut model = LogisticRegression::new(17, 0.01);
    train_lbfgs(&mut model, &w.train, &Default::default());

    // The paper's count-complaint workload plus a self-join with a model
    // predicate (the shape where the cached join skeleton pays most).
    let n = w.query.len();
    let bucket = Column::Int((0..n as i64).map(|i| i % 10).collect());
    let mut db = Database::new();
    db.register(
        "dblp",
        dataset_to_table(&w.query, vec![("bucket", bucket.clone())]),
    );
    db.register(
        "dblp_b",
        dataset_to_table(&w.query, vec![("bucket", bucket)]),
    );
    let cases = [
        (
            "count",
            plan_for("SELECT COUNT(*) FROM dblp WHERE predict(*) = 1", &db),
        ),
        (
            "join",
            plan_for(
                "SELECT COUNT(*) FROM dblp a, dblp_b b \
                 WHERE a.id = b.id AND b.bucket < 4 AND predict(a) = 1",
                &db,
            ),
        ),
    ];

    // Prepare once; assert refresh ≡ full execution before timing.
    let prepared: Vec<_> = cases
        .iter()
        .map(|(name, plan)| {
            let p = prepare(&db, &model, plan, Engine::Vectorized).expect(name);
            let full = execute(&db, &model, plan, ExecOptions::debug()).unwrap();
            let refreshed = p.refresh(&db, &model).unwrap();
            assert_eq!(
                full.table.to_tsv(),
                refreshed.table.to_tsv(),
                "{name}: rows disagree"
            );
            assert_eq!(
                full.agg_cells, refreshed.agg_cells,
                "{name}: provenance disagrees"
            );
            assert_eq!(
                full.predvars.preds(),
                refreshed.predvars.preds(),
                "{name}: predictions disagree"
            );
            p
        })
        .collect();

    let samples = if quick { 3 } else { 30 };
    let mut g = BenchGroup::new("iteration_incremental", samples);
    for ((name, plan), p) in cases.iter().zip(&prepared) {
        g.bench(&format!("full_{name}"), || {
            execute(&db, &model, plan, ExecOptions::debug()).unwrap()
        });
        g.bench(&format!("refresh_{name}"), || {
            p.refresh(&db, &model).unwrap()
        });
    }
    g.finish();

    let mut json = format!(
        "{{\n  \"bench\": \"iteration_incremental\",\n  \"n_query\": {n_query},\n  \"samples\": {samples}"
    );
    for (name, _) in &cases {
        let (full, refresh) = (
            g.median_secs(&format!("full_{name}")).unwrap(),
            g.median_secs(&format!("refresh_{name}")).unwrap(),
        );
        println!(
            "speedup_{name}: {:.2}x (full {:.3} ms → refresh {:.3} ms)",
            full / refresh,
            full * 1e3,
            refresh * 1e3
        );
        json.push_str(&format!(
            ",\n  \"{name}\": {{ \"full_ms\": {:.6}, \"refresh_ms\": {:.6}, \"speedup\": {:.3} }}",
            full * 1e3,
            refresh * 1e3,
            full / refresh
        ));
    }
    json
}

/// Memoized vs plain refresh on a duplicate-heavy, low-flip workload:
/// feature rows drawn from a small pool of distinct vectors scored by an
/// MLP (per-row inference far dearer than a hash lookup — the regime the
/// memo exists for), and a model nudge that flips fewer than 10% of
/// predictions between iterations. Each memoized sample advances the
/// generation first (the driver's per-retrain discipline), so the memo
/// pays purely through within-generation deduplication: 64 distinct
/// inferences instead of one per row. Appends a `memo` section to
/// `BENCH_iteration.json` gated by `bench_floors.json`.
fn bench_memo(json: &mut String) {
    let quick = rain_bench::is_quick();
    let n = if quick { 20_000 } else { 40_000 };
    const POOL: usize = 64;
    const DIM: usize = 16;
    let mut rng = RainRng::seed_from_u64(0x3E30);
    let pool: Vec<Vec<f64>> = (0..POOL)
        .map(|_| (0..DIM).map(|_| rng.uniform_range(-1.0, 1.0)).collect())
        .collect();
    let rows: Vec<&[f64]> = (0..n).map(|i| &pool[i % POOL][..]).collect();
    let feats = Matrix::from_rows(&rows);
    let table = Table::from_columns(
        Schema::new(&[("id", ColType::Int)]),
        vec![Column::Int((0..n as i64).collect())],
    )
    .with_features(feats.clone());
    let mut db = Database::new();
    db.register("pool", table);

    // A seeded MLP and a single-bias nudge of it: only rows whose logit
    // gap falls inside the nudge band flip, which must be <10%.
    let model_a = rain_model::Mlp::new(DIM, 32, 2, 0.0, 7);
    let mut model_b = model_a.clone();
    let mut nudged = model_a.params().to_vec();
    *nudged.last_mut().unwrap() += 0.08;
    model_b.set_params(&nudged);
    let (pa, pb) = (model_a.predict_batch(&feats), model_b.predict_batch(&feats));
    let flips = pa.iter().zip(&pb).filter(|(a, b)| a != b).count();
    let flip_fraction = flips as f64 / n as f64;
    assert!(
        flip_fraction < 0.10,
        "memo workload must flip <10% of predictions per nudge, got {flip_fraction:.3}"
    );

    let plan = plan_for("SELECT COUNT(*) FROM pool WHERE predict(*) = 1", &db);
    let prepared = prepare(&db, &model_a, &plan, Engine::Vectorized).unwrap();

    // Correctness before timing: memoized ≡ plain under both models,
    // within a generation and across an advance.
    let mut memo = ScoreMemo::new();
    memo.advance(1);
    let plain = prepared.refresh_threaded(&db, &model_b, 1).unwrap();
    let memod = prepared
        .refresh_memo_threaded(&db, &model_b, 1, &mut memo)
        .unwrap();
    assert_eq!(plain.table.to_tsv(), memod.table.to_tsv(), "memo: rows");
    assert_eq!(
        plain.predvars.preds(),
        memod.predvars.preds(),
        "memo: predictions"
    );
    assert_eq!(memo.misses(), POOL as u64, "one inference per distinct row");
    let again = prepared
        .refresh_memo_threaded(&db, &model_b, 1, &mut memo)
        .unwrap();
    assert_eq!(plain.predvars.preds(), again.predvars.preds());
    assert_eq!(memo.misses(), POOL as u64, "same generation: all hits");
    memo.advance(2);
    let back = prepared
        .refresh_memo_threaded(&db, &model_a, 1, &mut memo)
        .unwrap();
    let back_plain = prepared.refresh_threaded(&db, &model_a, 1).unwrap();
    assert_eq!(back_plain.predvars.preds(), back.predvars.preds());

    let samples = if quick { 3 } else { 30 };
    let mut g = BenchGroup::new("iteration_memo", samples);
    g.bench("refresh_plain", || {
        prepared.refresh_threaded(&db, &model_b, 1).unwrap()
    });
    let bench_memo = std::cell::RefCell::new((ScoreMemo::new(), 0u64));
    g.bench("refresh_memo", || {
        let (memo, generation) = &mut *bench_memo.borrow_mut();
        *generation += 1;
        memo.advance(*generation);
        prepared
            .refresh_memo_threaded(&db, &model_b, 1, memo)
            .unwrap()
    });
    g.finish();

    let (plain_s, memo_s) = (
        g.median_secs("refresh_plain").unwrap(),
        g.median_secs("refresh_memo").unwrap(),
    );
    println!(
        "memo speedup: {:.2}x (plain {:.3} ms → memo {:.3} ms, flip fraction {flip_fraction:.4})",
        plain_s / memo_s,
        plain_s * 1e3,
        memo_s * 1e3
    );
    json.push_str(&format!(
        ",\n  \"memo\": {{ \"plain_ms\": {:.6}, \"memo_ms\": {:.6}, \"speedup\": {:.3}, \
         \"flip_fraction\": {flip_fraction:.6}, \"pool\": {POOL}, \"rows\": {n} }}",
        plain_s * 1e3,
        memo_s * 1e3,
        plain_s / memo_s
    ));
}

fn main() {
    bench_iteration();
    let mut json = bench_incremental();
    bench_memo(&mut json);
    json.push_str("\n}\n");
    let path =
        std::env::var("RAIN_BENCH_JSON").unwrap_or_else(|_| "BENCH_iteration.json".to_string());
    std::fs::write(&path, &json).expect("write bench artifact");
    println!("wrote {path}");
}
