//! Figure 5 / Figure 12 microbenches: the cost of one train–rank–fix
//! iteration, split by phase (train / encode / rank), for Loss, TwoStep,
//! and Holistic on the DBLP workload — plus the incremental-vs-full
//! re-execution comparison for the loop's encode phase.
//!
//! The incremental section pits a prepared skeleton's per-iteration
//! `refresh` against a full debug-mode `execute` on the same plans (the
//! paper's count complaint and a self-join with a model predicate),
//! asserts the outputs are bit-identical before timing, and writes the
//! speedups to `BENCH_iteration.json` (path overridable via
//! `RAIN_BENCH_JSON`), which CI uploads as the loop's bench trajectory.

use rain_bench::BenchGroup;
use rain_core::prelude::*;
use rain_core::rank::{rank, Method as M, RankContext};
use rain_data::dblp::DblpConfig;
use rain_data::flip_labels_where;
use rain_data::tables::dataset_to_table;
use rain_model::{train_lbfgs, LbfgsConfig, LogisticRegression};
use rain_sql::table::Column;
use rain_sql::{
    bind, execute, optimize, parse_select, prepare, run_query, Database, Engine, ExecOptions,
    QueryPlan,
};

struct Fixture {
    db: Database,
    train: rain_model::Dataset,
    model: LogisticRegression,
    queries: Vec<QuerySpec>,
    out: rain_sql::QueryOutput,
}

fn fixture() -> Fixture {
    let w = DblpConfig {
        n_train: 1000,
        n_query: 500,
        ..Default::default()
    }
    .generate(42);
    let mut train = w.train.clone();
    flip_labels_where(&mut train, |_, _, y| y == 1, 0.5, |_| 0, 42);
    let mut db = Database::new();
    db.register("dblp", w.query_table());
    let mut model = LogisticRegression::new(17, 0.01);
    train_lbfgs(&mut model, &train, &LbfgsConfig::default());
    let sql = "SELECT COUNT(*) FROM dblp WHERE predict(*) = 1";
    let out = run_query(&db, &model, sql, ExecOptions::debug()).unwrap();
    let queries =
        vec![QuerySpec::new(sql).with_complaint(Complaint::scalar_eq(w.true_match_count() as f64))];
    Fixture {
        db,
        train,
        model,
        queries,
        out,
    }
}

fn bench_iteration() {
    let f = fixture();
    let mut g = BenchGroup::new("iteration_phase", 10);

    g.bench("train_warm", || {
        let mut m = f.model.clone();
        train_lbfgs(&mut m, &f.train, &LbfgsConfig::warm())
    });
    g.bench("exec_debug_mode", || {
        run_query(&f.db, &f.model, &f.queries[0].sql, ExecOptions::debug()).unwrap()
    });
    for method in [M::Loss, M::TwoStep, M::Holistic] {
        let influence = Default::default();
        let sqlstep = Default::default();
        g.bench(&format!("rank_{}", method.name()), || {
            let ctx = RankContext {
                db: &f.db,
                model: &f.model,
                train: &f.train,
                outputs: std::slice::from_ref(&f.out),
                queries: &f.queries,
                influence: &influence,
                sqlstep: &sqlstep,
            };
            rank(method, &ctx).unwrap()
        });
    }
    g.finish();
}

fn plan_for(sql: &str, db: &Database) -> QueryPlan {
    let stmt = parse_select(sql).unwrap();
    let bound = bind(&stmt, db).unwrap();
    optimize(bound, db)
}

/// Incremental refresh vs full debug-mode re-execution, per iteration of
/// the loop: the tentpole comparison, exported as `BENCH_iteration.json`.
fn bench_incremental() {
    let quick = rain_bench::is_quick();
    let n_query = 2000;
    let w = DblpConfig {
        n_train: 400,
        n_query,
        ..Default::default()
    }
    .generate(42);
    let mut model = LogisticRegression::new(17, 0.01);
    train_lbfgs(&mut model, &w.train, &Default::default());

    // The paper's count-complaint workload plus a self-join with a model
    // predicate (the shape where the cached join skeleton pays most).
    let n = w.query.len();
    let bucket = Column::Int((0..n as i64).map(|i| i % 10).collect());
    let mut db = Database::new();
    db.register(
        "dblp",
        dataset_to_table(&w.query, vec![("bucket", bucket.clone())]),
    );
    db.register(
        "dblp_b",
        dataset_to_table(&w.query, vec![("bucket", bucket)]),
    );
    let cases = [
        (
            "count",
            plan_for("SELECT COUNT(*) FROM dblp WHERE predict(*) = 1", &db),
        ),
        (
            "join",
            plan_for(
                "SELECT COUNT(*) FROM dblp a, dblp_b b \
                 WHERE a.id = b.id AND b.bucket < 4 AND predict(a) = 1",
                &db,
            ),
        ),
    ];

    // Prepare once; assert refresh ≡ full execution before timing.
    let prepared: Vec<_> = cases
        .iter()
        .map(|(name, plan)| {
            let p = prepare(&db, &model, plan, Engine::Vectorized).expect(name);
            let full = execute(&db, &model, plan, ExecOptions::debug()).unwrap();
            let refreshed = p.refresh(&db, &model).unwrap();
            assert_eq!(
                full.table.to_tsv(),
                refreshed.table.to_tsv(),
                "{name}: rows disagree"
            );
            assert_eq!(
                full.agg_cells, refreshed.agg_cells,
                "{name}: provenance disagrees"
            );
            assert_eq!(
                full.predvars.preds(),
                refreshed.predvars.preds(),
                "{name}: predictions disagree"
            );
            p
        })
        .collect();

    let samples = if quick { 3 } else { 30 };
    let mut g = BenchGroup::new("iteration_incremental", samples);
    for ((name, plan), p) in cases.iter().zip(&prepared) {
        g.bench(&format!("full_{name}"), || {
            execute(&db, &model, plan, ExecOptions::debug()).unwrap()
        });
        g.bench(&format!("refresh_{name}"), || {
            p.refresh(&db, &model).unwrap()
        });
    }
    g.finish();

    let mut json = format!(
        "{{\n  \"bench\": \"iteration_incremental\",\n  \"n_query\": {n_query},\n  \"samples\": {samples}"
    );
    for (name, _) in &cases {
        let (full, refresh) = (
            g.median_secs(&format!("full_{name}")).unwrap(),
            g.median_secs(&format!("refresh_{name}")).unwrap(),
        );
        println!(
            "speedup_{name}: {:.2}x (full {:.3} ms → refresh {:.3} ms)",
            full / refresh,
            full * 1e3,
            refresh * 1e3
        );
        json.push_str(&format!(
            ",\n  \"{name}\": {{ \"full_ms\": {:.6}, \"refresh_ms\": {:.6}, \"speedup\": {:.3} }}",
            full * 1e3,
            refresh * 1e3,
            full / refresh
        ));
    }
    json.push_str("\n}\n");
    let path =
        std::env::var("RAIN_BENCH_JSON").unwrap_or_else(|_| "BENCH_iteration.json".to_string());
    std::fs::write(&path, &json).expect("write bench artifact");
    println!("wrote {path}");
}

fn main() {
    bench_iteration();
    bench_incremental();
}
