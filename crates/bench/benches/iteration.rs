//! Figure 5 / Figure 12 microbenches: the cost of one train–rank–fix
//! iteration, split by phase (train / encode / rank), for Loss, TwoStep,
//! and Holistic on the DBLP workload.

use rain_bench::BenchGroup;
use rain_core::prelude::*;
use rain_core::rank::{rank, Method as M, RankContext};
use rain_data::dblp::DblpConfig;
use rain_data::flip_labels_where;
use rain_model::{train_lbfgs, LbfgsConfig, LogisticRegression};
use rain_sql::{run_query, Database, ExecOptions};

struct Fixture {
    db: Database,
    train: rain_model::Dataset,
    model: LogisticRegression,
    queries: Vec<QuerySpec>,
    out: rain_sql::QueryOutput,
}

fn fixture() -> Fixture {
    let w = DblpConfig {
        n_train: 1000,
        n_query: 500,
        ..Default::default()
    }
    .generate(42);
    let mut train = w.train.clone();
    flip_labels_where(&mut train, |_, _, y| y == 1, 0.5, |_| 0, 42);
    let mut db = Database::new();
    db.register("dblp", w.query_table());
    let mut model = LogisticRegression::new(17, 0.01);
    train_lbfgs(&mut model, &train, &LbfgsConfig::default());
    let sql = "SELECT COUNT(*) FROM dblp WHERE predict(*) = 1";
    let out = run_query(&db, &model, sql, ExecOptions::debug()).unwrap();
    let queries =
        vec![QuerySpec::new(sql).with_complaint(Complaint::scalar_eq(w.true_match_count() as f64))];
    Fixture {
        db,
        train,
        model,
        queries,
        out,
    }
}

fn bench_iteration() {
    let f = fixture();
    let mut g = BenchGroup::new("iteration_phase", 10);

    g.bench("train_warm", || {
        let mut m = f.model.clone();
        train_lbfgs(&mut m, &f.train, &LbfgsConfig::warm())
    });
    g.bench("exec_debug_mode", || {
        run_query(&f.db, &f.model, &f.queries[0].sql, ExecOptions::debug()).unwrap()
    });
    for method in [M::Loss, M::TwoStep, M::Holistic] {
        let influence = Default::default();
        let sqlstep = Default::default();
        g.bench(&format!("rank_{}", method.name()), || {
            let ctx = RankContext {
                db: &f.db,
                model: &f.model,
                train: &f.train,
                outputs: std::slice::from_ref(&f.out),
                queries: &f.queries,
                influence: &influence,
                sqlstep: &sqlstep,
            };
            rank(method, &ctx).unwrap()
        });
    }
    g.finish();
}

fn main() {
    bench_iteration();
}
