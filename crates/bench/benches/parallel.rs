//! Morsel-parallel scaling bench on the DBLP join workload.
//!
//! Times the model-free DBLP equi-join (the `BENCH_vexec.json` `join`
//! shape, scaled up so the parallel scan, partitioned hash build, and
//! join-probe paths dominate) and a grouped aggregation over the full
//! pair set at `threads ∈ {1, 2, 4}`, plus the debug-mode skeleton
//! refresh (batched-inference fan-out) at 1 vs 4 workers. Before timing,
//! every thread count's output is asserted bit-identical to `threads=1`
//! and to the tuple oracle — thread count must never change results.
//!
//! Writes `BENCH_parallel.json` (path overridable via `RAIN_BENCH_JSON`)
//! with the headline `scaling_4t` ratios and the host's core count —
//! the regression gate only enforces the scaling floor when the bench
//! actually had ≥ 4 cores to scale onto.

use rain_bench::BenchGroup;
use rain_data::{dblp::DblpConfig, tables::dataset_to_table};
use rain_model::{train_lbfgs, LogisticRegression};
use rain_sql::table::Column;
use rain_sql::{
    bind, execute, optimize, parse_select, prepare, Database, Engine, ExecOptions, QueryPlan,
};

const JOIN_SQL: &str = "SELECT COUNT(*) FROM pairs_a a, pairs_b b \
                        WHERE a.id = b.id AND b.bucket < 2";
const DEBUG_SQL: &str = "SELECT COUNT(*) FROM pairs_a a, pairs_b b \
                         WHERE a.id = b.id AND b.bucket < 4 AND predict(a) = 1";
const AGG_SQL: &str = "SELECT bucket, COUNT(*), SUM(id) FROM pairs_a GROUP BY bucket";

fn plan_for(sql: &str, db: &Database) -> QueryPlan {
    let stmt = parse_select(sql).unwrap();
    let bound = bind(&stmt, db).unwrap();
    optimize(bound, db)
}

fn main() {
    let quick = rain_bench::is_quick();
    let n_query = if quick { 200_000 } else { 400_000 };
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let w = DblpConfig {
        n_train: 400,
        n_query,
        ..Default::default()
    }
    .generate(42);
    let mut model = LogisticRegression::new(17, 0.01);
    train_lbfgs(&mut model, &w.train, &Default::default());

    // Probe-heavy shape: the full pair set probes against a 5×-smaller
    // build relation (plus its pushed-down bucket filter) — the realistic
    // big-fact-vs-filtered-dimension case. The morsel-parallel probe
    // dominates, and the build relation is large enough that the
    // hash build partitions across workers too.
    let n = w.query.len();
    let bucket = |n: usize| Column::Int((0..n as i64).map(|i| i % 10).collect());
    let n_build = (n / 5).min(20_000);
    let b_side = w.query.select(&(0..n_build).collect::<Vec<_>>());
    let mut db = Database::new();
    db.register(
        "pairs_a",
        dataset_to_table(&w.query, vec![("bucket", bucket(n))]),
    );
    db.register(
        "pairs_b",
        dataset_to_table(&b_side, vec![("bucket", bucket(n_build))]),
    );

    let join_plan = plan_for(JOIN_SQL, &db);
    let debug_plan = plan_for(DEBUG_SQL, &db);
    let agg_plan = plan_for(AGG_SQL, &db);
    let thread_counts = [1usize, 2, 4];

    // Correctness before timing: every thread count must reproduce the
    // sequential vexec output AND the tuple oracle, rows and provenance.
    for (name, plan) in [("join", &join_plan), ("agg", &agg_plan)] {
        let oracle = execute(&db, &model, plan, ExecOptions::default().on(Engine::Tuple)).unwrap();
        for &t in &thread_counts {
            let out = execute(&db, &model, plan, ExecOptions::default().with_threads(t)).unwrap();
            assert_eq!(
                oracle.table.to_tsv(),
                out.table.to_tsv(),
                "{name} threads={t}: rows disagree with the tuple oracle"
            );
        }
    }
    let prepared = prepare(&db, &model, &debug_plan, Engine::Vectorized).unwrap();
    let refresh_1 = prepared.refresh_threaded(&db, &model, 1).unwrap();
    for &t in &thread_counts {
        let out = prepared.refresh_threaded(&db, &model, t).unwrap();
        assert_eq!(
            refresh_1.table.to_tsv(),
            out.table.to_tsv(),
            "threads={t}: refresh rows disagree"
        );
        assert_eq!(
            refresh_1.agg_cells, out.agg_cells,
            "threads={t}: refresh provenance disagrees"
        );
        assert_eq!(
            refresh_1.predvars.preds(),
            out.predvars.preds(),
            "threads={t}: refresh predictions disagree"
        );
    }

    let samples = if quick { 3 } else { 20 };
    let mut g = BenchGroup::new("dblp_join_parallel", samples);
    for &t in &thread_counts {
        g.bench(&format!("join_{t}t"), || {
            execute(
                &db,
                &model,
                &join_plan,
                ExecOptions::default().with_threads(t),
            )
            .unwrap()
        });
        g.bench(&format!("agg_{t}t"), || {
            execute(
                &db,
                &model,
                &agg_plan,
                ExecOptions::default().with_threads(t),
            )
            .unwrap()
        });
    }
    for &t in &[1usize, 4] {
        g.bench(&format!("refresh_{t}t"), || {
            prepared.refresh_threaded(&db, &model, t).unwrap()
        });
    }
    g.finish();

    let join_ms: Vec<f64> = thread_counts
        .iter()
        .map(|t| g.median_secs(&format!("join_{t}t")).unwrap() * 1e3)
        .collect();
    let agg_ms: Vec<f64> = thread_counts
        .iter()
        .map(|t| g.median_secs(&format!("agg_{t}t")).unwrap() * 1e3)
        .collect();
    let refresh_1t = g.median_secs("refresh_1t").unwrap() * 1e3;
    let refresh_4t = g.median_secs("refresh_4t").unwrap() * 1e3;
    let join_scaling = join_ms[0] / join_ms[2];
    let agg_scaling = agg_ms[0] / agg_ms[2];
    let refresh_scaling = refresh_1t / refresh_4t;
    println!("host_cores: {host_cores}");
    println!(
        "join scaling at 4 threads: {join_scaling:.2}x ({:.3} ms -> {:.3} ms)",
        join_ms[0], join_ms[2]
    );
    println!(
        "agg scaling at 4 threads: {agg_scaling:.2}x ({:.3} ms -> {:.3} ms)",
        agg_ms[0], agg_ms[2]
    );
    println!(
        "refresh scaling at 4 threads: {refresh_scaling:.2}x ({refresh_1t:.3} ms -> {refresh_4t:.3} ms)"
    );

    let json = format!(
        "{{\n  \"bench\": \"dblp_join_parallel\",\n  \"n_query\": {n_query},\n  \
         \"samples\": {samples},\n  \"host_cores\": {host_cores},\n  \
         \"join\": {{ \"t1_ms\": {:.6}, \"t2_ms\": {:.6}, \"t4_ms\": {:.6}, \
         \"scaling_4t\": {:.3} }},\n  \
         \"agg\": {{ \"t1_ms\": {:.6}, \"t2_ms\": {:.6}, \"t4_ms\": {:.6}, \
         \"scaling_4t\": {agg_scaling:.3} }},\n  \
         \"refresh\": {{ \"t1_ms\": {refresh_1t:.6}, \"t4_ms\": {refresh_4t:.6}, \
         \"scaling_4t\": {refresh_scaling:.3} }}\n}}\n",
        join_ms[0], join_ms[1], join_ms[2], join_scaling, agg_ms[0], agg_ms[1], agg_ms[2]
    );
    let path =
        std::env::var("RAIN_BENCH_JSON").unwrap_or_else(|_| "BENCH_parallel.json".to_string());
    std::fs::write(&path, &json).expect("write bench artifact");
    println!("wrote {path}");
}
