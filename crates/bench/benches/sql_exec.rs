//! Query-execution benches: normal vs debug (provenance) mode, for a
//! filter query and a prediction join — the overhead the paper's "debug
//! mode" re-execution (§5.1) pays for lineage.

use criterion::{criterion_group, criterion_main, Criterion};
use rain_data::digits::DigitsConfig;
use rain_model::{train_lbfgs, SoftmaxRegression};
use rain_sql::{run_query, Database, ExecOptions};

fn bench_exec(c: &mut Criterion) {
    let w = DigitsConfig { n_train: 400, n_query: 400 }.generate(42);
    let mut model = SoftmaxRegression::new(
        rain_data::digits::N_PIXELS,
        rain_data::digits::N_CLASSES,
        0.01,
    );
    train_lbfgs(&mut model, &w.train, &Default::default());
    let mut db = Database::new();
    let all: Vec<usize> = (0..10).collect();
    db.register("mnist", w.query_table_for(&all, 400));
    db.register("left", w.query_table_for(&[1, 2, 3], 60));
    db.register("right", w.query_table_for(&[7, 8, 9], 60));

    let mut g = c.benchmark_group("sql_exec");
    let filter = "SELECT COUNT(*) FROM mnist WHERE predict(*) = 1";
    let join = "SELECT COUNT(*) FROM left l, right r WHERE predict(l) = predict(r)";
    for (name, sql) in [("filter", filter), ("pred_join", join)] {
        for (mode, debug) in [("normal", false), ("debug", true)] {
            g.bench_function(format!("{name}_{mode}"), |b| {
                b.iter(|| run_query(&db, &model, sql, ExecOptions { debug }).unwrap())
            });
        }
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_exec
}
criterion_main!(benches);
