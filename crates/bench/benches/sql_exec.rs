//! Query-execution benches: normal vs debug (provenance) mode for a
//! filter query and a prediction join — the overhead the paper's "debug
//! mode" re-execution (§5.1) pays for lineage — plus the optimizer's
//! headline comparison: naive vs optimized plans on the DBLP join
//! workload, where predicate pushdown prunes the hash-join build.

use rain_bench::BenchGroup;
use rain_data::digits::DigitsConfig;
use rain_data::{dblp::DblpConfig, tables::dataset_to_table};
use rain_model::{train_lbfgs, LogisticRegression, SoftmaxRegression};
use rain_sql::table::Column;
use rain_sql::{
    bind, execute, optimize, parse_select, run_query, Database, ExecOptions, QueryPlan,
};

fn bench_exec() {
    let w = DigitsConfig {
        n_train: 400,
        n_query: 400,
    }
    .generate(42);
    let mut model = SoftmaxRegression::new(
        rain_data::digits::N_PIXELS,
        rain_data::digits::N_CLASSES,
        0.01,
    );
    train_lbfgs(&mut model, &w.train, &Default::default());
    let mut db = Database::new();
    let all: Vec<usize> = (0..10).collect();
    db.register("mnist", w.query_table_for(&all, 400));
    db.register("left", w.query_table_for(&[1, 2, 3], 60));
    db.register("right", w.query_table_for(&[7, 8, 9], 60));

    let mut g = BenchGroup::new("sql_exec", 20);
    let filter = "SELECT COUNT(*) FROM mnist WHERE predict(*) = 1";
    let join = "SELECT COUNT(*) FROM left l, right r WHERE predict(l) = predict(r)";
    for (name, sql) in [("filter", filter), ("pred_join", join)] {
        for (mode, debug) in [("normal", false), ("debug", true)] {
            g.bench(&format!("{name}_{mode}"), || {
                run_query(&db, &model, sql, ExecOptions::with_debug(debug)).unwrap()
            });
        }
    }
    g.finish();
}

/// Naive vs optimized plans on a DBLP self-join with a pushable filter:
/// the optimizer moves `b.bucket < k` into b's scan, shrinking the hash
/// build and the joined tuple stream before the model predicate runs.
fn bench_optimizer_vs_naive() {
    let w = DblpConfig {
        n_train: 400,
        n_query: 600,
        ..Default::default()
    }
    .generate(42);
    let mut model = LogisticRegression::new(17, 0.01);
    train_lbfgs(&mut model, &w.train, &Default::default());

    // The queried pairs, duplicated into two relations; `bucket` gives the
    // filter something selective to push down.
    let n = w.query.len();
    let bucket = Column::Int((0..n as i64).map(|i| i % 10).collect());
    let mut db = Database::new();
    db.register(
        "pairs_a",
        dataset_to_table(&w.query, vec![("bucket", bucket.clone())]),
    );
    db.register(
        "pairs_b",
        dataset_to_table(&w.query, vec![("bucket", bucket)]),
    );

    let sql = "SELECT COUNT(*) FROM pairs_a a, pairs_b b \
               WHERE a.id = b.id AND b.bucket < 2 AND predict(a) = 1";
    let stmt = parse_select(sql).unwrap();
    let bound = bind(&stmt, &db).unwrap();
    let naive = QueryPlan::naive(bound.clone(), &db);
    let optimized = optimize(bound, &db);

    // Both plans must agree before we time them.
    let a = execute(&db, &model, &naive, ExecOptions::debug()).unwrap();
    let b = execute(&db, &model, &optimized, ExecOptions::debug()).unwrap();
    assert_eq!(a.table.to_tsv(), b.table.to_tsv(), "plans disagree");

    let mut g = BenchGroup::new("dblp_join_plans", 20);
    for (mode, debug) in [("normal", false), ("debug", true)] {
        g.bench(&format!("naive_{mode}"), || {
            execute(&db, &model, &naive, ExecOptions::with_debug(debug)).unwrap()
        });
        g.bench(&format!("optimized_{mode}"), || {
            execute(&db, &model, &optimized, ExecOptions::with_debug(debug)).unwrap()
        });
    }
    g.finish();
    for mode in ["normal", "debug"] {
        let (n, o) = (
            g.median_secs(&format!("naive_{mode}")).unwrap(),
            g.median_secs(&format!("optimized_{mode}")).unwrap(),
        );
        println!(
            "speedup_{mode}: {:.2}x (naive {:.3} ms → optimized {:.3} ms)",
            n / o,
            n * 1e3,
            o * 1e3
        );
    }
}

fn main() {
    bench_exec();
    bench_optimizer_vs_naive();
}
