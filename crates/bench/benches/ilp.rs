//! ILP substrate benches: LP relaxations, branch & bound on repair
//! problems, and the bipartite vertex-cover presolve path.

use rain_bench::BenchGroup;
use rain_ilp::{
    hopcroft_karp, solve_ilp, solve_lp, BbConfig, BipartiteGraph, Constraint, IlpProblem, Sense,
};

/// The Tiresias COUNT encoding at size `n`: flip costs ±1, Σt = n/2.
fn cardinality_problem(n: usize) -> IlpProblem {
    let mut p = IlpProblem::new();
    for i in 0..n {
        p.add_var(if i % 3 == 0 { -1.0 } else { 1.0 });
    }
    p.add_constraint(Constraint::new(
        (0..n).map(|i| (i, 1.0)).collect(),
        Sense::Eq,
        (n / 2) as f64,
    ));
    p
}

fn bench_ilp() {
    let mut g = BenchGroup::new("ilp", 20);
    for &n in &[20usize, 60, 120] {
        let p = cardinality_problem(n);
        g.bench(&format!("lp_relaxation_{}", n), || {
            solve_lp(&p.objective, &p.constraints)
        });
        g.bench(&format!("branch_and_bound_{}", n), || {
            solve_ilp(&p, &BbConfig::default())
        });
    }
    for &n in &[100usize, 1000, 5000] {
        let mut graph = BipartiteGraph::new(n, n / 4);
        for l in 0..n {
            graph.add_edge(l, l % (n / 4));
            if l % 7 == 0 {
                graph.add_edge(l, (l / 7) % (n / 4));
            }
        }
        g.bench(&format!("hopcroft_karp_{}", n), || hopcroft_karp(&graph));
    }
    g.finish();
}

fn main() {
    bench_ilp();
}
