//! Relaxed-provenance benches: evaluating and differentiating the
//! polynomials Holistic builds, at COUNT-over-join scale.

use rain_bench::BenchGroup;
use rain_linalg::RainRng;
use rain_sql::{AggSum, AggTerm, BoolProv, CellProv, Probs};

/// A COUNT cell over an `n_left × n_right` prediction join.
fn join_count_cell(n_left: usize, n_right: usize) -> (CellProv, Probs) {
    let mut terms = Vec::with_capacity(n_left * n_right);
    for l in 0..n_left {
        for r in 0..n_right {
            terms.push((
                BoolProv::PredEq {
                    left: l as u32,
                    right: (n_left + r) as u32,
                },
                AggTerm::One,
            ));
        }
    }
    let mut rng = RainRng::seed_from_u64(42);
    let p = (0..n_left + n_right)
        .map(|_| {
            let mut row = vec![0.0; 10];
            let hot = rng.below(10);
            for (c, v) in row.iter_mut().enumerate() {
                *v = if c == hot { 0.82 } else { 0.02 };
            }
            row
        })
        .collect();
    (
        CellProv::Sum(std::sync::Arc::new(AggSum { terms })),
        Probs { p },
    )
}

fn bench_relax() {
    let mut g = BenchGroup::new("relax", 15);
    for &side in &[30usize, 100, 250] {
        let (cell, probs) = join_count_cell(side, side);
        g.bench(&format!("eval_relaxed_{}", side * side), || {
            cell.eval_relaxed(&probs)
        });
        g.bench(&format!("grad_{}", side * side), || cell.grad(&probs));
    }
    g.finish();
}

fn main() {
    bench_relax();
}
