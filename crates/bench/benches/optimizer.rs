//! Cost-based-optimizer microbench: join ordering and index access paths.
//!
//! Two workloads, each timing the same query with an optimizer feature
//! off vs on (everything else — pushdown, pruning, engine — identical):
//!
//! - `reorder`: a three-way join written in its worst FROM order (the two
//!   big relations first, with no join predicate between them — a cross
//!   product — and the small filtered relation last). FROM-order
//!   execution materializes the cross product; the cost-based optimizer
//!   reorders to hash-join each big relation through the small one.
//! - `index_scan`: a highly selective equality on a big table, as a full
//!   (morsel-parallel) scan vs a hash-index posting-list lookup.
//!
//! Outputs the timing table plus a `BENCH_optimizer.json` artifact (path
//! overridable via `RAIN_BENCH_JSON`) recording both speedups, which CI
//! gates via `bench_floors.json`. Before timing, both plans of each pair
//! are asserted to produce identical rows.

use rain_bench::BenchGroup;
use rain_model::LogisticRegression;
use rain_sql::table::{ColType, Column, Schema, Table};
use rain_sql::{
    bind, execute, optimize_with, parse_select, Database, Engine, ExecOptions, IndexKind,
    OptimizerConfig, QueryPlan,
};

fn plan_for(sql: &str, db: &Database, cfg: &OptimizerConfig) -> QueryPlan {
    let stmt = parse_select(sql).unwrap();
    let bound = bind(&stmt, db).unwrap();
    optimize_with(bound, db, cfg)
}

fn int_table(name: &str, cols: &[(&str, Vec<i64>)], db: &mut Database) {
    let schema: Vec<(&str, ColType)> = cols.iter().map(|(n, _)| (*n, ColType::Int)).collect();
    let data = cols.iter().map(|(_, v)| Column::Int(v.clone())).collect();
    db.register(name, Table::from_columns(Schema::new(&schema), data));
}

fn main() {
    let quick = rain_bench::is_quick();
    let model = LogisticRegression::new(1, 0.0);
    let opts = ExecOptions::with_debug(false);

    // ---- Workload 1: join ordering. ----
    // facts_a ⋈ dims ⋈ facts_b, written big-big-small. FROM order has no
    // predicate linking the two fact tables, so the first step is their
    // cross product; the cost model sees that and starts from `dims`.
    let n_fact = if quick { 600 } else { 2_000 };
    let n_dim = 50i64;
    let mut db = Database::new();
    int_table(
        "facts_a",
        &[("k", (0..n_fact).map(|i| i % n_dim).collect())],
        &mut db,
    );
    int_table(
        "facts_b",
        &[("k", (0..n_fact).map(|i| (i * 7) % n_dim).collect())],
        &mut db,
    );
    int_table(
        "dims",
        &[
            ("k", (0..n_dim).collect()),
            ("grp", (0..n_dim).map(|i| i % 5).collect()),
        ],
        &mut db,
    );
    let reorder_sql = "SELECT COUNT(*) FROM facts_a a, facts_b b, dims d \
                       WHERE a.k = d.k AND b.k = d.k AND d.grp = 0";
    let from_order = plan_for(
        reorder_sql,
        &db,
        &OptimizerConfig {
            join_reorder: false,
            ..Default::default()
        },
    );
    let cost_based = plan_for(reorder_sql, &db, &OptimizerConfig::default());
    println!("-- FROM-order plan --\n{}", from_order.explain(&db));
    println!("-- cost-based plan --\n{}", cost_based.explain(&db));

    // ---- Workload 2: index scan vs full scan. ----
    let n_big = if quick { 60_000 } else { 200_000 };
    let mut ixdb = Database::new();
    int_table(
        "events",
        &[
            ("id", (0..n_big as i64).collect()),
            ("payload", (0..n_big as i64).map(|i| i * 3).collect()),
        ],
        &mut ixdb,
    );
    ixdb.create_index("events", "id", IndexKind::Hash).unwrap();
    let probe = (n_big as i64) / 2;
    let index_sql = format!("SELECT SUM(payload) FROM events WHERE id = {probe}");
    let seq_scan = plan_for(
        &index_sql,
        &ixdb,
        &OptimizerConfig {
            index_paths: false,
            ..Default::default()
        },
    );
    let index_scan = plan_for(&index_sql, &ixdb, &OptimizerConfig::default());
    println!(
        "-- index plan --\n{}",
        index_scan.explain_engine(&ixdb, Engine::Vectorized)
    );

    // Correctness before timing: each pair must agree exactly.
    let run = |db: &Database, plan: &QueryPlan| {
        execute(db, &model, plan, opts.on(Engine::Vectorized)).unwrap()
    };
    assert_eq!(
        run(&db, &from_order).table.to_tsv(),
        run(&db, &cost_based).table.to_tsv(),
        "reorder changed the answer"
    );
    assert_eq!(
        run(&ixdb, &seq_scan).table.to_tsv(),
        run(&ixdb, &index_scan).table.to_tsv(),
        "index path changed the answer"
    );

    let samples = if quick { 3 } else { 20 };
    let mut g = BenchGroup::new("optimizer", samples);
    g.bench("reorder_from_order", || run(&db, &from_order));
    g.bench("reorder_cost_based", || run(&db, &cost_based));
    g.bench("scan_seq", || run(&ixdb, &seq_scan));
    g.bench("scan_index", || run(&ixdb, &index_scan));
    g.finish();

    let (fo, cb) = (
        g.median_secs("reorder_from_order").unwrap(),
        g.median_secs("reorder_cost_based").unwrap(),
    );
    let (seq, ix) = (
        g.median_secs("scan_seq").unwrap(),
        g.median_secs("scan_index").unwrap(),
    );
    println!(
        "reorder speedup: {:.1}x (FROM order {:.3} ms → cost-based {:.3} ms)",
        fo / cb,
        fo * 1e3,
        cb * 1e3
    );
    println!(
        "index-scan speedup: {:.1}x (seq {:.3} ms → index {:.3} ms)",
        seq / ix,
        seq * 1e3,
        ix * 1e3
    );

    let json = format!(
        "{{\n  \"bench\": \"optimizer\",\n  \"n_fact\": {n_fact},\n  \"n_events\": {n_big},\n  \
         \"samples\": {samples},\n  \
         \"reorder\": {{ \"from_order_ms\": {:.6}, \"cost_based_ms\": {:.6}, \"speedup\": {:.3} }},\n  \
         \"index_scan\": {{ \"seq_ms\": {:.6}, \"index_ms\": {:.6}, \"speedup\": {:.3} }}\n}}\n",
        fo * 1e3,
        cb * 1e3,
        fo / cb,
        seq * 1e3,
        ix * 1e3,
        seq / ix
    );
    let path =
        std::env::var("RAIN_BENCH_JSON").unwrap_or_else(|_| "BENCH_optimizer.json".to_string());
    std::fs::write(&path, &json).expect("write bench artifact");
    println!("wrote {path}");
}
