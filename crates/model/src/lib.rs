//! Differentiable classifiers for Rain.
//!
//! The Rain paper (§4.1) needs four things from a model beyond ordinary
//! training and inference:
//!
//! 1. per-example loss gradients `∇θ ℓ(z, θ*)`,
//! 2. Hessian-vector products `H·v` of the **full** (regularized) training
//!    loss, consumed by the conjugate-gradient solver in `rain-influence`,
//! 3. gradients of predicted class probabilities `∇θ p_c(x, θ*)`, which are
//!    how user complaints (encoded as differentiable functions `q(θ)` over
//!    probabilities) chain back into parameter space,
//! 4. warm-started retraining inside the train–rank–fix loop.
//!
//! Rust autodiff crates are immature, so every derivative here is hand
//! derived and exact: closed forms for [`logistic::LogisticRegression`] and
//! [`softmax::SoftmaxRegression`], and the Pearlmutter R-operator for the
//! non-convex [`mlp::Mlp`] (the appendix-D neural-network experiments).
//! All derivatives are verified against central finite differences in tests.
//!
//! Loss convention (matching the paper): the trained objective is
//! `L(θ) = (1/n) Σᵢ ℓ(zᵢ, θ) + λ‖θ‖²`, so the Hessian lower bound is `2λI`
//! and influence computations stay well-posed.

pub mod dataset;
pub mod logistic;
pub mod metrics;
pub mod mlp;
pub mod model;
pub mod softmax;
pub mod train;

pub use dataset::Dataset;
pub use logistic::LogisticRegression;
pub use metrics::{accuracy, confusion_binary, f1_score, BinaryConfusion};
pub use mlp::Mlp;
pub use model::Classifier;
pub use softmax::SoftmaxRegression;
pub use train::{train_lbfgs, LbfgsConfig, TrainReport};
