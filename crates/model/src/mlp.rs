//! One-hidden-layer multilayer perceptron (the appendix-D "neural network").
//!
//! Architecture: `x̃ = [x, 1]` → `z₁ = W₁ x̃` → `a = relu(z₁)` → `ã = [a, 1]`
//! → `z₂ = W₂ ã` → `p = softmax(z₂)`, cross-entropy loss.
//!
//! Parameter layout (flat): `W₁` (h rows × (d+1) cols, row-major) followed
//! by `W₂` (C rows × (h+1) cols, row-major).
//!
//! The Hessian-vector product uses the **Pearlmutter R-operator**: run a
//! tangent (directional-derivative) pass alongside the forward and backward
//! passes. With ReLU the second derivative of the activation vanishes
//! almost everywhere, so the R-pass only needs the first-derivative mask:
//!
//! ```text
//! forward:  Rz₁ = V₁x̃          Ra  = 1[z₁>0] ⊙ Rz₁
//!           Rz₂ = V₂ã + W₂Rã   Rp  = (diag(p) − ppᵀ)Rz₂
//! backward: δ₂  = p − e_y      Rδ₂ = Rp
//!           ∂W₂ = δ₂ãᵀ         R∂W₂ = Rδ₂ãᵀ + δ₂Rãᵀ
//!           δ₁  = (W₂ᵀδ₂) ⊙ m  Rδ₁ = (V₂ᵀδ₂ + W₂ᵀRδ₂) ⊙ m,  m = 1[z₁>0]
//!           ∂W₁ = δ₁x̃ᵀ         R∂W₁ = Rδ₁x̃ᵀ
//! ```
//!
//! This is the *exact* Hessian of the network (a.e.), not a Gauss–Newton
//! approximation; it can be indefinite, which is why `rain-influence`
//! applies damping during conjugate gradient (as Koh & Liang do).

use crate::dataset::Dataset;
use crate::model::Classifier;
use rain_linalg::stats::softmax;
use rain_linalg::{vecops, RainRng};

/// One-hidden-layer ReLU MLP with a softmax head.
#[derive(Debug, Clone)]
pub struct Mlp {
    params: Vec<f64>,
    dim: usize,
    hidden: usize,
    n_classes: usize,
    l2: f64,
}

/// Intermediate activations of one forward pass, reused by the backward and
/// R-op passes.
struct Forward {
    z1: Vec<f64>,
    a: Vec<f64>,
    p: Vec<f64>,
}

impl Mlp {
    /// Create an MLP with small random (seeded) initial weights.
    pub fn new(dim: usize, hidden: usize, n_classes: usize, l2: f64, seed: u64) -> Self {
        assert!(hidden >= 1, "need at least one hidden unit");
        assert!(n_classes >= 2, "need at least two classes");
        assert!(l2 >= 0.0, "l2 must be non-negative");
        let n_params = hidden * (dim + 1) + n_classes * (hidden + 1);
        let mut rng = RainRng::seed_from_u64(seed);
        // He-style initialization scaled by fan-in.
        let s1 = (2.0 / (dim + 1) as f64).sqrt();
        let s2 = (2.0 / (hidden + 1) as f64).sqrt();
        let mut params = Vec::with_capacity(n_params);
        for _ in 0..hidden * (dim + 1) {
            params.push(rng.normal() * s1);
        }
        for _ in 0..n_classes * (hidden + 1) {
            params.push(rng.normal() * s2);
        }
        Mlp {
            params,
            dim,
            hidden,
            n_classes,
            l2,
        }
    }

    /// Hidden-layer width.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    #[inline]
    fn w1(&self) -> &[f64] {
        &self.params[..self.hidden * (self.dim + 1)]
    }

    #[inline]
    fn w2(&self) -> &[f64] {
        &self.params[self.hidden * (self.dim + 1)..]
    }

    /// Split an arbitrary parameter-shaped vector into (V₁, V₂) views.
    #[inline]
    fn split<'a>(&self, v: &'a [f64]) -> (&'a [f64], &'a [f64]) {
        v.split_at(self.hidden * (self.dim + 1))
    }

    /// `W·x̃` for a weight block with `rows` rows over input `x` (+bias).
    fn affine(w: &[f64], x: &[f64], rows: usize) -> Vec<f64> {
        let cols = x.len() + 1;
        let mut out = Vec::with_capacity(rows);
        for r in 0..rows {
            let row = &w[r * cols..(r + 1) * cols];
            out.push(vecops::dot(&row[..x.len()], x) + row[x.len()]);
        }
        out
    }

    /// `Wᵀ·d` restricted to the non-bias columns.
    fn affine_t(w: &[f64], d: &[f64], rows: usize, in_dim: usize) -> Vec<f64> {
        let cols = in_dim + 1;
        let mut out = vec![0.0; in_dim];
        for (r, &dr) in d.iter().enumerate().take(rows) {
            if dr != 0.0 {
                let row = &w[r * cols..(r + 1) * cols];
                vecops::axpy(dr, &row[..in_dim], &mut out);
            }
        }
        out
    }

    /// Accumulate `out += coeff · d x̃ᵀ` into a weight-block gradient.
    fn acc_outer(out: &mut [f64], d: &[f64], x: &[f64], coeff: f64) {
        let cols = x.len() + 1;
        for (r, &dr) in d.iter().enumerate() {
            if dr != 0.0 {
                let row = &mut out[r * cols..(r + 1) * cols];
                vecops::axpy(coeff * dr, x, &mut row[..x.len()]);
                row[x.len()] += coeff * dr;
            }
        }
    }

    fn forward(&self, x: &[f64]) -> Forward {
        debug_assert_eq!(x.len(), self.dim);
        let z1 = Self::affine(self.w1(), x, self.hidden);
        let a: Vec<f64> = z1.iter().map(|&z| z.max(0.0)).collect();
        let z2 = Self::affine(self.w2(), &a, self.n_classes);
        let p = softmax(&z2);
        Forward { z1, a, p }
    }

    /// Backward pass from an output-layer error signal `δ₂`, accumulating
    /// `coeff ·` the gradient into `out`.
    fn backward_into(&self, x: &[f64], fwd: &Forward, d2: &[f64], coeff: f64, out: &mut [f64]) {
        let (out1, out2) = out.split_at_mut(self.hidden * (self.dim + 1));
        Self::acc_outer(out2, d2, &fwd.a, coeff);
        let mut d1 = Self::affine_t(self.w2(), d2, self.n_classes, self.hidden);
        for (d, &z) in d1.iter_mut().zip(&fwd.z1) {
            if z <= 0.0 {
                *d = 0.0;
            }
        }
        Self::acc_outer(out1, &d1, x, coeff);
    }
}

impl Classifier for Mlp {
    fn n_classes(&self) -> usize {
        self.n_classes
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn n_params(&self) -> usize {
        self.params.len()
    }

    fn params(&self) -> &[f64] {
        &self.params
    }

    fn set_params(&mut self, p: &[f64]) {
        assert_eq!(p.len(), self.params.len(), "set_params: length mismatch");
        self.params.copy_from_slice(p);
    }

    fn l2(&self) -> f64 {
        self.l2
    }

    fn predict_proba(&self, x: &[f64]) -> Vec<f64> {
        self.forward(x).p
    }

    fn example_loss(&self, x: &[f64], y: usize) -> f64 {
        debug_assert!(y < self.n_classes);
        let fwd = self.forward(x);
        -fwd.p[y].max(1e-12).ln()
    }

    fn example_grad_into(&self, x: &[f64], y: usize, out: &mut [f64]) {
        debug_assert_eq!(out.len(), self.n_params());
        vecops::zero(out);
        let fwd = self.forward(x);
        let mut d2 = fwd.p.clone();
        d2[y] -= 1.0;
        self.backward_into(x, &fwd, &d2, 1.0, out);
    }

    fn hvp(&self, data: &Dataset, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.n_params(), "hvp: vector length mismatch");
        let n = data.len().max(1) as f64;
        let (v1, v2) = self.split(v);
        let mut out = vec![0.0; self.n_params()];
        for i in 0..data.len() {
            let x = data.x(i);
            let y = data.y(i);
            let fwd = self.forward(x);
            // R-forward.
            let rz1 = Self::affine(v1, x, self.hidden);
            let ra: Vec<f64> = rz1
                .iter()
                .zip(&fwd.z1)
                .map(|(&r, &z)| if z > 0.0 { r } else { 0.0 })
                .collect();
            let mut rz2 = Self::affine(v2, &fwd.a, self.n_classes);
            // + W₂ Rã  (bias column of ã has zero tangent).
            let cols2 = self.hidden + 1;
            for (r, rz) in rz2.iter_mut().enumerate() {
                let row = &self.w2()[r * cols2..(r + 1) * cols2];
                *rz += vecops::dot(&row[..self.hidden], &ra);
            }
            // Rp = (diag(p) − ppᵀ) Rz₂.
            let prz = vecops::dot(&fwd.p, &rz2);
            let rp: Vec<f64> = fwd
                .p
                .iter()
                .zip(&rz2)
                .map(|(&pc, &rc)| pc * (rc - prz))
                .collect();
            // R-backward.
            let mut d2 = fwd.p.clone();
            d2[y] -= 1.0;
            let rd2 = rp;
            let (out1, out2) = out.split_at_mut(self.hidden * (self.dim + 1));
            // R∂W₂ = Rδ₂ ãᵀ + δ₂ Rãᵀ  (Rã bias entry is 0).
            Self::acc_outer(out2, &rd2, &fwd.a, 1.0 / n);
            for (r, &dr) in d2.iter().enumerate() {
                if dr != 0.0 {
                    let row = &mut out2[r * cols2..(r + 1) * cols2];
                    vecops::axpy(dr / n, &ra, &mut row[..self.hidden]);
                }
            }
            // Rδ₁ = (V₂ᵀ δ₂ + W₂ᵀ Rδ₂) ⊙ m.
            let mut rd1 = Self::affine_t(v2, &d2, self.n_classes, self.hidden);
            let w2t_rd2 = Self::affine_t(self.w2(), &rd2, self.n_classes, self.hidden);
            vecops::axpy(1.0, &w2t_rd2, &mut rd1);
            for (d, &z) in rd1.iter_mut().zip(&fwd.z1) {
                if z <= 0.0 {
                    *d = 0.0;
                }
            }
            Self::acc_outer(out1, &rd1, x, 1.0 / n);
        }
        vecops::axpy(2.0 * self.l2, v, &mut out);
        out
    }

    fn grad_proba(&self, x: &[f64], class: usize) -> Vec<f64> {
        debug_assert!(class < self.n_classes);
        let fwd = self.forward(x);
        // ∂p_class/∂z₂ = p_class (e_class − p).
        let mut d2: Vec<f64> = fwd.p.iter().map(|&pk| -fwd.p[class] * pk).collect();
        d2[class] += fwd.p[class];
        let mut g = vec![0.0; self.n_params()];
        self.backward_into(x, &fwd, &d2, 1.0, &mut g);
        g
    }

    fn clone_box(&self) -> Box<dyn Classifier> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "mlp"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::check;
    use rain_linalg::{Matrix, RainRng};

    fn toy_data(n: usize, classes: usize, seed: u64) -> Dataset {
        let mut rng = RainRng::seed_from_u64(seed);
        let dim = 5;
        let mut rows = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            let y = rng.below(classes);
            let mut x = rng.normal_vec(dim, 0.7);
            x[y % dim] += 2.0;
            rows.push(x);
            labels.push(y);
        }
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        Dataset::new(Matrix::from_rows(&refs), labels, classes)
    }

    fn fitted(data: &Dataset, seed: u64) -> Mlp {
        let mut m = Mlp::new(data.dim(), 8, data.n_classes(), 0.01, seed);
        for _ in 0..120 {
            let g = m.grad(data);
            let mut p = m.params().to_vec();
            vecops::axpy(-0.3, &g, &mut p);
            m.set_params(&p);
        }
        m
    }

    #[test]
    fn proba_normalizes() {
        let data = toy_data(10, 3, 1);
        let m = Mlp::new(data.dim(), 4, 3, 0.0, 9);
        let p = m.predict_proba(data.x(0));
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn training_reduces_loss_and_fits() {
        let data = toy_data(150, 3, 2);
        let m0 = Mlp::new(data.dim(), 8, 3, 0.01, 3);
        let before = m0.loss(&data);
        let m = fitted(&data, 3);
        assert!(m.loss(&data) < before);
        let correct = (0..data.len())
            .filter(|&i| m.predict(data.x(i)) == data.y(i))
            .count();
        assert!(correct as f64 / data.len() as f64 > 0.8, "acc too low");
    }

    #[test]
    fn grad_matches_finite_differences() {
        let data = toy_data(12, 3, 4);
        let m = fitted(&data, 4);
        let g = m.grad(&data);
        let fd = check::fd_grad(&m, &data, 1e-5);
        assert!(
            vecops::approx_eq(&g, &fd, 1e-4),
            "max diff {}",
            g.iter()
                .zip(&fd)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max)
        );
    }

    #[test]
    fn rop_hvp_matches_finite_differences() {
        let data = toy_data(12, 3, 5);
        let m = fitted(&data, 5);
        let mut rng = RainRng::seed_from_u64(6);
        // Small direction to stay clear of ReLU kinks.
        let v = rng.normal_vec(m.n_params(), 0.1);
        let hv = m.hvp(&data, &v);
        let fd = check::fd_hvp(&m, &data, &v, 1e-6);
        let denom = 1.0 + vecops::norm_inf(&fd);
        let err = hv
            .iter()
            .zip(&fd)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        assert!(err / denom < 1e-3, "rel err {}", err / denom);
    }

    #[test]
    fn rop_hvp_is_symmetric_and_linear() {
        let data = toy_data(10, 3, 7);
        let m = fitted(&data, 7);
        let mut rng = RainRng::seed_from_u64(8);
        let v = rng.normal_vec(m.n_params(), 1.0);
        let w = rng.normal_vec(m.n_params(), 1.0);
        let vhw = vecops::dot(&v, &m.hvp(&data, &w));
        let whv = vecops::dot(&w, &m.hvp(&data, &v));
        assert!(
            (vhw - whv).abs() < 1e-7 * (1.0 + vhw.abs()),
            "{vhw} vs {whv}"
        );
        let lhs = m.hvp(&data, &vecops::add(&v, &w));
        let rhs = vecops::add(&m.hvp(&data, &v), &m.hvp(&data, &w));
        assert!(vecops::approx_eq(&lhs, &rhs, 1e-8));
    }

    #[test]
    fn grad_proba_matches_finite_differences() {
        let data = toy_data(6, 3, 9);
        let m = fitted(&data, 9);
        let x = data.x(1).to_vec();
        for class in 0..3 {
            let g = m.grad_proba(&x, class);
            let fd = check::fd_grad_proba(&m, &x, class, 1e-6);
            assert!(vecops::approx_eq(&g, &fd, 1e-5), "class {class}");
        }
    }

    #[test]
    fn distinct_seeds_give_distinct_inits() {
        let a = Mlp::new(4, 3, 2, 0.0, 1);
        let b = Mlp::new(4, 3, 2, 0.0, 2);
        assert_ne!(a.params(), b.params());
    }
}
