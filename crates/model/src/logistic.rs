//! Binary logistic regression with closed-form derivatives.
//!
//! Parameters are `[w₀ … w_{d-1}, b]` (weights then intercept). With
//! `x̃ = [x, 1]` and `p = σ(θ·x̃)`:
//!
//! - loss      `ℓ = -(y ln p + (1-y) ln(1-p))`
//! - gradient  `∇ℓ = (p - y)·x̃`
//! - HVP       `H·v = (1/n) Σ pᵢ(1-pᵢ)(x̃ᵢ·v)·x̃ᵢ + 2λv`
//! - `∇ p₁ = p(1-p)·x̃`, `∇ p₀ = -∇ p₁`
//!
//! The paper runs all main-body experiments on this model (§6.1.6).

use crate::dataset::Dataset;
use crate::model::Classifier;
use rain_linalg::stats::sigmoid;
use rain_linalg::vecops;

/// Binary logistic-regression classifier (classes `0` and `1`).
#[derive(Debug, Clone)]
pub struct LogisticRegression {
    /// `[w, b]`, length `dim + 1`.
    params: Vec<f64>,
    dim: usize,
    l2: f64,
    use_bias: bool,
}

impl LogisticRegression {
    /// Zero-initialized model for `dim` features with L2 strength `l2`.
    pub fn new(dim: usize, l2: f64) -> Self {
        assert!(l2 >= 0.0, "l2 must be non-negative");
        LogisticRegression {
            params: vec![0.0; dim + 1],
            dim,
            l2,
            use_bias: true,
        }
    }

    /// A model without an intercept term (`p = σ(w·x)`); used by settings
    /// that rely on exact feature-subspace orthogonality (appendix A/C
    /// constructions), where a shared bias would couple all records. The
    /// bias parameter slot remains in the layout but is pinned to 0.
    pub fn without_bias(dim: usize, l2: f64) -> Self {
        assert!(l2 >= 0.0, "l2 must be non-negative");
        LogisticRegression {
            params: vec![0.0; dim + 1],
            dim,
            l2,
            use_bias: false,
        }
    }

    /// The margin `θ·x̃ = w·x + b`.
    #[inline]
    pub fn margin(&self, x: &[f64]) -> f64 {
        debug_assert_eq!(x.len(), self.dim);
        let b = if self.use_bias {
            self.params[self.dim]
        } else {
            0.0
        };
        vecops::dot(&self.params[..self.dim], x) + b
    }

    /// Probability of class 1.
    #[inline]
    pub fn proba1(&self, x: &[f64]) -> f64 {
        sigmoid(self.margin(x))
    }

    /// Clamp a probability away from 0/1 so log-losses stay finite.
    #[inline]
    fn clamp_p(p: f64) -> f64 {
        p.clamp(1e-12, 1.0 - 1e-12)
    }
}

impl Classifier for LogisticRegression {
    fn n_classes(&self) -> usize {
        2
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn n_params(&self) -> usize {
        self.dim + 1
    }

    fn params(&self) -> &[f64] {
        &self.params
    }

    fn set_params(&mut self, p: &[f64]) {
        assert_eq!(p.len(), self.params.len(), "set_params: length mismatch");
        self.params.copy_from_slice(p);
    }

    fn l2(&self) -> f64 {
        self.l2
    }

    fn predict_proba(&self, x: &[f64]) -> Vec<f64> {
        let p1 = self.proba1(x);
        vec![1.0 - p1, p1]
    }

    fn predict_batch(&self, x: &rain_linalg::Matrix) -> Vec<usize> {
        // Allocation-free batched path: one dot product per row, argmax
        // over a stack pair — bitwise the same classes as per-row
        // `predict` (which argmaxes the heap-allocated proba vector).
        x.iter_rows()
            .map(|r| {
                let p1 = self.proba1(r);
                rain_linalg::vecops::argmax(&[1.0 - p1, p1]).expect("non-empty proba")
            })
            .collect()
    }

    fn predict_range_into(&self, x: &rain_linalg::Matrix, start: usize, out: &mut [usize]) {
        // Same allocation-free kernel as `predict_batch`, over a row
        // range — what each parallel-refresh worker runs on its chunk.
        for (k, slot) in out.iter_mut().enumerate() {
            let p1 = self.proba1(x.row(start + k));
            *slot = rain_linalg::vecops::argmax(&[1.0 - p1, p1]).expect("non-empty proba");
        }
    }

    fn example_loss(&self, x: &[f64], y: usize) -> f64 {
        debug_assert!(y < 2);
        let p = Self::clamp_p(self.proba1(x));
        if y == 1 {
            -p.ln()
        } else {
            -(1.0 - p).ln()
        }
    }

    fn example_grad_into(&self, x: &[f64], y: usize, out: &mut [f64]) {
        debug_assert_eq!(out.len(), self.n_params());
        let coeff = self.proba1(x) - y as f64;
        for (o, xi) in out[..self.dim].iter_mut().zip(x) {
            *o = coeff * xi;
        }
        out[self.dim] = if self.use_bias { coeff } else { 0.0 };
    }

    fn example_grad_dot(&self, x: &[f64], y: usize, v: &[f64]) -> f64 {
        let coeff = self.proba1(x) - y as f64;
        let vb = if self.use_bias { v[self.dim] } else { 0.0 };
        coeff * (vecops::dot(&v[..self.dim], x) + vb)
    }

    fn hvp(&self, data: &Dataset, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.n_params(), "hvp: vector length mismatch");
        let n = data.len().max(1) as f64;
        let mut out = vec![0.0; self.n_params()];
        for i in 0..data.len() {
            let x = data.x(i);
            let p = self.proba1(x);
            let s = p * (1.0 - p);
            // (x̃·v)
            let vb = if self.use_bias { v[self.dim] } else { 0.0 };
            let xv = vecops::dot(&v[..self.dim], x) + vb;
            let c = s * xv / n;
            vecops::axpy(c, x, &mut out[..self.dim]);
            if self.use_bias {
                out[self.dim] += c;
            }
        }
        // Hessian of λ‖θ‖² is 2λI.
        vecops::axpy(2.0 * self.l2, v, &mut out);
        out
    }

    fn grad_proba(&self, x: &[f64], class: usize) -> Vec<f64> {
        debug_assert!(class < 2);
        let p = self.proba1(x);
        let sign = if class == 1 { 1.0 } else { -1.0 };
        let c = sign * p * (1.0 - p);
        let mut g = vec![0.0; self.n_params()];
        for (gi, xi) in g[..self.dim].iter_mut().zip(x) {
            *gi = c * xi;
        }
        g[self.dim] = if self.use_bias { c } else { 0.0 };
        g
    }

    fn clone_box(&self) -> Box<dyn Classifier> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "logistic"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::check;
    use rain_linalg::{Matrix, RainRng};

    fn toy_data(n: usize, seed: u64) -> Dataset {
        let mut rng = RainRng::seed_from_u64(seed);
        let mut rows = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            let y = rng.bernoulli(0.5) as usize;
            let shift = if y == 1 { 1.0 } else { -1.0 };
            rows.push(vec![
                rng.normal() + shift,
                rng.normal() - shift,
                rng.normal(),
            ]);
            labels.push(y);
        }
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        Dataset::new(Matrix::from_rows(&refs), labels, 2)
    }

    fn fitted_model(data: &Dataset) -> LogisticRegression {
        let mut m = LogisticRegression::new(data.dim(), 0.01);
        // A few gradient steps are enough for derivative checks.
        for _ in 0..50 {
            let g = m.grad(data);
            let mut p = m.params().to_vec();
            vecops::axpy(-0.5, &g, &mut p);
            m.set_params(&p);
        }
        m
    }

    #[test]
    fn proba_is_sigmoid_of_margin() {
        let mut m = LogisticRegression::new(2, 0.0);
        m.set_params(&[1.0, -1.0, 0.5]);
        let x = [2.0, 1.0];
        assert!((m.proba1(&x) - sigmoid(2.0 - 1.0 + 0.5)).abs() < 1e-12);
        let p = m.predict_proba(&x);
        assert!((p[0] + p[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn grad_matches_finite_differences() {
        let data = toy_data(40, 1);
        let m = fitted_model(&data);
        let g = m.grad(&data);
        let fd = check::fd_grad(&m, &data, 1e-5);
        assert!(vecops::approx_eq(&g, &fd, 1e-5), "g={g:?} fd={fd:?}");
    }

    #[test]
    fn hvp_matches_finite_differences() {
        let data = toy_data(40, 2);
        let m = fitted_model(&data);
        let mut rng = RainRng::seed_from_u64(3);
        let v = rng.normal_vec(m.n_params(), 1.0);
        let hv = m.hvp(&data, &v);
        let fd = check::fd_hvp(&m, &data, &v, 1e-5);
        assert!(vecops::approx_eq(&hv, &fd, 1e-4), "hv={hv:?} fd={fd:?}");
    }

    #[test]
    fn hvp_is_linear_in_v() {
        let data = toy_data(30, 4);
        let m = fitted_model(&data);
        let mut rng = RainRng::seed_from_u64(5);
        let v1 = rng.normal_vec(m.n_params(), 1.0);
        let v2 = rng.normal_vec(m.n_params(), 1.0);
        let lhs = m.hvp(&data, &vecops::add(&v1, &v2));
        let rhs = vecops::add(&m.hvp(&data, &v1), &m.hvp(&data, &v2));
        assert!(vecops::approx_eq(&lhs, &rhs, 1e-9));
    }

    #[test]
    fn grad_proba_matches_finite_differences() {
        let data = toy_data(10, 6);
        let m = fitted_model(&data);
        let x = data.x(0).to_vec();
        for class in 0..2 {
            let g = m.grad_proba(&x, class);
            let fd = check::fd_grad_proba(&m, &x, class, 1e-6);
            assert!(vecops::approx_eq(&g, &fd, 1e-6), "class {class}");
        }
    }

    #[test]
    fn example_grad_dot_matches_materialized() {
        let data = toy_data(10, 7);
        let m = fitted_model(&data);
        let mut rng = RainRng::seed_from_u64(8);
        let v = rng.normal_vec(m.n_params(), 1.0);
        for i in 0..data.len() {
            let g = m.example_grad(data.x(i), data.y(i));
            let direct = m.example_grad_dot(data.x(i), data.y(i), &v);
            assert!((vecops::dot(&g, &v) - direct).abs() < 1e-10);
        }
    }

    #[test]
    fn batched_and_range_inference_match_per_row_predict() {
        let data = toy_data(67, 11);
        let m = fitted_model(&data);
        let x = data.features();
        let per_row: Vec<usize> = x.iter_rows().map(|r| m.predict(r)).collect();
        assert_eq!(m.predict_batch(x), per_row);
        // Range chunks (the parallel-refresh sharding unit) must agree
        // too, at any chunking.
        for chunk in [1usize, 7, 64, 100] {
            let mut out = vec![0usize; x.rows()];
            for start in (0..x.rows()).step_by(chunk) {
                let end = (start + chunk).min(x.rows());
                m.predict_range_into(x, start, &mut out[start..end]);
            }
            assert_eq!(out, per_row, "chunk={chunk}");
        }
    }

    #[test]
    fn loss_decreases_under_training() {
        let data = toy_data(100, 9);
        let m0 = LogisticRegression::new(data.dim(), 0.01);
        let before = m0.loss(&data);
        let m = fitted_model(&data);
        assert!(m.loss(&data) < before);
        // And the fitted model should classify the separable toy data well.
        let correct = (0..data.len())
            .filter(|&i| m.predict(data.x(i)) == data.y(i))
            .count();
        assert!(correct as f64 / data.len() as f64 > 0.8);
    }
}
