//! Multiclass softmax (multinomial logistic) regression.
//!
//! Parameter layout: a `(dim+1) × C` weight matrix stored row-major as one
//! flat vector; row `dim` is the per-class bias. With `x̃ = [x, 1]`,
//! `logits_c = Σⱼ x̃ⱼ W[j,c]` and `p = softmax(logits)`:
//!
//! - loss      `ℓ = -ln p_y`
//! - gradient  `∂ℓ/∂W[j,c] = x̃ⱼ (p_c - 1[c = y])`
//! - HVP       per-example, with `a = x̃ᵀV` (a C-vector for direction `V`):
//!   `u = p⊙a - p(p·a)`, contribution `∂/∂W[j,c] = x̃ⱼ u_c`
//! - `∂p_c/∂W[j,k] = x̃ⱼ p_c (1[k=c] - p_k)`
//!
//! This is the model used for the MNIST-style 10-class experiments (§6.3).

use crate::dataset::Dataset;
use crate::model::Classifier;
use rain_linalg::stats::softmax;
use rain_linalg::vecops;

/// Multiclass softmax regression.
#[derive(Debug, Clone)]
pub struct SoftmaxRegression {
    /// Flat `(dim+1) × n_classes` weights, row-major.
    params: Vec<f64>,
    dim: usize,
    n_classes: usize,
    l2: f64,
}

impl SoftmaxRegression {
    /// Zero-initialized model.
    pub fn new(dim: usize, n_classes: usize, l2: f64) -> Self {
        assert!(n_classes >= 2, "need at least two classes");
        assert!(l2 >= 0.0, "l2 must be non-negative");
        SoftmaxRegression {
            params: vec![0.0; (dim + 1) * n_classes],
            dim,
            n_classes,
            l2,
        }
    }

    /// Logits `x̃ᵀW` for one example.
    pub fn logits(&self, x: &[f64]) -> Vec<f64> {
        debug_assert_eq!(x.len(), self.dim);
        let c = self.n_classes;
        let mut out = self.params[self.dim * c..(self.dim + 1) * c].to_vec(); // bias row
        for (j, &xj) in x.iter().enumerate() {
            if xj != 0.0 {
                let row = &self.params[j * c..(j + 1) * c];
                vecops::axpy(xj, row, &mut out);
            }
        }
        out
    }

    /// `x̃ᵀ V` for an arbitrary direction `v` laid out like the parameters.
    fn xt_v(&self, x: &[f64], v: &[f64]) -> Vec<f64> {
        let c = self.n_classes;
        let mut out = v[self.dim * c..(self.dim + 1) * c].to_vec();
        for (j, &xj) in x.iter().enumerate() {
            if xj != 0.0 {
                vecops::axpy(xj, &v[j * c..(j + 1) * c], &mut out);
            }
        }
        out
    }

    /// Rank-one accumulate `out[j,·] += coeff·x̃ⱼ · u` for all rows j.
    fn add_outer_xu(&self, x: &[f64], u: &[f64], coeff: f64, out: &mut [f64]) {
        let c = self.n_classes;
        for (j, &xj) in x.iter().enumerate() {
            if xj != 0.0 {
                vecops::axpy(coeff * xj, u, &mut out[j * c..(j + 1) * c]);
            }
        }
        vecops::axpy(coeff, u, &mut out[self.dim * c..(self.dim + 1) * c]);
    }
}

impl Classifier for SoftmaxRegression {
    fn n_classes(&self) -> usize {
        self.n_classes
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn n_params(&self) -> usize {
        self.params.len()
    }

    fn params(&self) -> &[f64] {
        &self.params
    }

    fn set_params(&mut self, p: &[f64]) {
        assert_eq!(p.len(), self.params.len(), "set_params: length mismatch");
        self.params.copy_from_slice(p);
    }

    fn l2(&self) -> f64 {
        self.l2
    }

    fn predict_proba(&self, x: &[f64]) -> Vec<f64> {
        softmax(&self.logits(x))
    }

    fn example_loss(&self, x: &[f64], y: usize) -> f64 {
        debug_assert!(y < self.n_classes);
        let p = self.predict_proba(x);
        -p[y].max(1e-12).ln()
    }

    fn example_grad_into(&self, x: &[f64], y: usize, out: &mut [f64]) {
        debug_assert_eq!(out.len(), self.n_params());
        vecops::zero(out);
        let mut u = self.predict_proba(x);
        u[y] -= 1.0;
        self.add_outer_xu(x, &u, 1.0, out);
    }

    fn example_grad_dot(&self, x: &[f64], y: usize, v: &[f64]) -> f64 {
        // ∇ℓ·v = Σ_c (p_c - 1[c=y]) (x̃ᵀV)_c  — O(d·C) with no allocation of
        // the full gradient.
        let a = self.xt_v(x, v);
        let p = self.predict_proba(x);
        let mut dot = 0.0;
        for c in 0..self.n_classes {
            let coeff = p[c] - if c == y { 1.0 } else { 0.0 };
            dot += coeff * a[c];
        }
        dot
    }

    fn hvp(&self, data: &Dataset, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.n_params(), "hvp: vector length mismatch");
        let n = data.len().max(1) as f64;
        let mut out = vec![0.0; self.n_params()];
        for i in 0..data.len() {
            let x = data.x(i);
            let p = self.predict_proba(x);
            let a = self.xt_v(x, v);
            let pa = vecops::dot(&p, &a);
            // u = diag(p)a - p (pᵀa)
            let u: Vec<f64> = p.iter().zip(&a).map(|(pc, ac)| pc * (ac - pa)).collect();
            self.add_outer_xu(x, &u, 1.0 / n, &mut out);
        }
        vecops::axpy(2.0 * self.l2, v, &mut out);
        out
    }

    fn grad_proba(&self, x: &[f64], class: usize) -> Vec<f64> {
        debug_assert!(class < self.n_classes);
        let p = self.predict_proba(x);
        // ∂p_c/∂logit_k = p_c (δ_{kc} - p_k); chain through logits = x̃ᵀW.
        let mut u: Vec<f64> = p.iter().map(|&pk| -p[class] * pk).collect();
        u[class] += p[class];
        let mut g = vec![0.0; self.n_params()];
        self.add_outer_xu(x, &u, 1.0, &mut g);
        g
    }

    fn clone_box(&self) -> Box<dyn Classifier> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "softmax"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::check;
    use rain_linalg::{Matrix, RainRng};

    fn toy_data(n: usize, classes: usize, seed: u64) -> Dataset {
        let mut rng = RainRng::seed_from_u64(seed);
        let dim = 4;
        let mut rows = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            let y = rng.below(classes);
            let mut x = rng.normal_vec(dim, 1.0);
            x[y % dim] += 2.0; // make classes separable-ish
            rows.push(x);
            labels.push(y);
        }
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        Dataset::new(Matrix::from_rows(&refs), labels, classes)
    }

    fn fitted(data: &Dataset) -> SoftmaxRegression {
        let mut m = SoftmaxRegression::new(data.dim(), data.n_classes(), 0.01);
        for _ in 0..60 {
            let g = m.grad(data);
            let mut p = m.params().to_vec();
            vecops::axpy(-0.5, &g, &mut p);
            m.set_params(&p);
        }
        m
    }

    #[test]
    fn proba_normalizes() {
        let data = toy_data(20, 3, 1);
        let m = fitted(&data);
        let p = m.predict_proba(data.x(0));
        assert_eq!(p.len(), 3);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn binary_softmax_agrees_with_logistic() {
        // With two classes, softmax regression and logistic regression
        // define the same conditional distribution. Train both and compare
        // probabilities coarsely.
        let data = toy_data(200, 2, 2);
        let sm = fitted(&data);
        let mut lr = crate::logistic::LogisticRegression::new(data.dim(), 0.01);
        for _ in 0..200 {
            let g = lr.grad(&data);
            let mut p = lr.params().to_vec();
            vecops::axpy(-0.5, &g, &mut p);
            lr.set_params(&p);
        }
        for i in 0..10 {
            let ps = sm.predict_proba(data.x(i))[1];
            let pl = lr.predict_proba(data.x(i))[1];
            assert!((ps - pl).abs() < 0.15, "example {i}: {ps} vs {pl}");
        }
    }

    #[test]
    fn grad_matches_finite_differences() {
        let data = toy_data(15, 3, 3);
        let m = fitted(&data);
        let g = m.grad(&data);
        let fd = check::fd_grad(&m, &data, 1e-5);
        assert!(vecops::approx_eq(&g, &fd, 1e-5));
    }

    #[test]
    fn hvp_matches_finite_differences() {
        let data = toy_data(15, 3, 4);
        let m = fitted(&data);
        let mut rng = RainRng::seed_from_u64(5);
        let v = rng.normal_vec(m.n_params(), 1.0);
        let hv = m.hvp(&data, &v);
        let fd = check::fd_hvp(&m, &data, &v, 1e-5);
        assert!(vecops::approx_eq(&hv, &fd, 1e-4));
    }

    #[test]
    fn hvp_is_symmetric() {
        // vᵀHw == wᵀHv for any v, w.
        let data = toy_data(12, 4, 6);
        let m = fitted(&data);
        let mut rng = RainRng::seed_from_u64(7);
        let v = rng.normal_vec(m.n_params(), 1.0);
        let w = rng.normal_vec(m.n_params(), 1.0);
        let vhw = vecops::dot(&v, &m.hvp(&data, &w));
        let whv = vecops::dot(&w, &m.hvp(&data, &v));
        assert!((vhw - whv).abs() < 1e-8 * (1.0 + vhw.abs()));
    }

    #[test]
    fn grad_proba_matches_finite_differences() {
        let data = toy_data(8, 3, 8);
        let m = fitted(&data);
        let x = data.x(0).to_vec();
        for class in 0..3 {
            let g = m.grad_proba(&x, class);
            let fd = check::fd_grad_proba(&m, &x, class, 1e-6);
            assert!(vecops::approx_eq(&g, &fd, 1e-6), "class {class}");
        }
    }

    #[test]
    fn grad_proba_sums_to_zero_across_classes() {
        // Σ_c p_c = 1 ⟹ Σ_c ∇p_c = 0.
        let data = toy_data(5, 4, 9);
        let m = fitted(&data);
        let x = data.x(2);
        let mut total = vec![0.0; m.n_params()];
        for c in 0..4 {
            vecops::axpy(1.0, &m.grad_proba(x, c), &mut total);
        }
        assert!(vecops::norm_inf(&total) < 1e-10);
    }

    #[test]
    fn example_grad_dot_matches_materialized() {
        let data = toy_data(10, 3, 10);
        let m = fitted(&data);
        let mut rng = RainRng::seed_from_u64(11);
        let v = rng.normal_vec(m.n_params(), 1.0);
        for i in 0..data.len() {
            let g = m.example_grad(data.x(i), data.y(i));
            let direct = m.example_grad_dot(data.x(i), data.y(i), &v);
            assert!((vecops::dot(&g, &v) - direct).abs() < 1e-9);
        }
    }
}
