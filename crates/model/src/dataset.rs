//! Labeled training/query sets.
//!
//! A [`Dataset`] couples a feature matrix (one example per row) with integer
//! class labels and with *stable record ids*. The ids matter: Rain's
//! train–rank–fix loop deletes training records across iterations, and
//! recall is always measured against ground-truth corruption ids from the
//! original, undeleted set.

use rain_linalg::Matrix;

/// A labeled dataset with stable per-record identifiers.
#[derive(Debug, Clone)]
pub struct Dataset {
    features: Matrix,
    labels: Vec<usize>,
    ids: Vec<usize>,
    n_classes: usize,
}

impl Dataset {
    /// Build a dataset whose ids are `0..n`.
    ///
    /// # Panics
    /// Panics if row/label counts differ or a label is `>= n_classes`.
    pub fn new(features: Matrix, labels: Vec<usize>, n_classes: usize) -> Self {
        let ids = (0..labels.len()).collect();
        Self::with_ids(features, labels, ids, n_classes)
    }

    /// Build a dataset with explicit record ids.
    pub fn with_ids(
        features: Matrix,
        labels: Vec<usize>,
        ids: Vec<usize>,
        n_classes: usize,
    ) -> Self {
        assert_eq!(features.rows(), labels.len(), "Dataset: row/label mismatch");
        assert_eq!(labels.len(), ids.len(), "Dataset: label/id mismatch");
        assert!(n_classes >= 2, "Dataset: need at least two classes");
        assert!(
            labels.iter().all(|&y| y < n_classes),
            "Dataset: label out of range"
        );
        Dataset {
            features,
            labels,
            ids,
            n_classes,
        }
    }

    /// Number of examples.
    #[inline]
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when the dataset holds no examples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Feature dimensionality.
    #[inline]
    pub fn dim(&self) -> usize {
        self.features.cols()
    }

    /// Number of classes.
    #[inline]
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Feature row of example `i`.
    #[inline]
    pub fn x(&self, i: usize) -> &[f64] {
        self.features.row(i)
    }

    /// Label of example `i`.
    #[inline]
    pub fn y(&self, i: usize) -> usize {
        self.labels[i]
    }

    /// Stable id of example `i`.
    #[inline]
    pub fn id(&self, i: usize) -> usize {
        self.ids[i]
    }

    /// All labels.
    #[inline]
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// All ids.
    #[inline]
    pub fn ids(&self) -> &[usize] {
        &self.ids
    }

    /// The underlying feature matrix.
    #[inline]
    pub fn features(&self) -> &Matrix {
        &self.features
    }

    /// Set the label of example `i` (used by corruption injectors).
    pub fn set_label(&mut self, i: usize, y: usize) {
        assert!(y < self.n_classes, "set_label: label out of range");
        self.labels[i] = y;
    }

    /// New dataset keeping only the rows at `keep` (ids preserved).
    pub fn select(&self, keep: &[usize]) -> Dataset {
        Dataset {
            features: self.features.select_rows(keep),
            labels: keep.iter().map(|&i| self.labels[i]).collect(),
            ids: keep.iter().map(|&i| self.ids[i]).collect(),
            n_classes: self.n_classes,
        }
    }

    /// New dataset with the rows whose *ids* appear in `remove` deleted.
    pub fn remove_ids(&self, remove: &[usize]) -> Dataset {
        let removed: std::collections::HashSet<usize> = remove.iter().copied().collect();
        let keep: Vec<usize> = (0..self.len())
            .filter(|&i| !removed.contains(&self.ids[i]))
            .collect();
        self.select(&keep)
    }

    /// Row positions of examples matching a predicate over `(id, x, y)`.
    pub fn positions_where<F>(&self, mut pred: F) -> Vec<usize>
    where
        F: FnMut(usize, &[f64], usize) -> bool,
    {
        (0..self.len())
            .filter(|&i| pred(self.ids[i], self.x(i), self.y(i)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        let m = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0], &[1.0, 1.0]]);
        Dataset::new(m, vec![0, 1, 1], 2)
    }

    #[test]
    fn basic_accessors() {
        let d = toy();
        assert_eq!(d.len(), 3);
        assert_eq!(d.dim(), 2);
        assert_eq!(d.x(1), &[1.0, 0.0]);
        assert_eq!(d.y(2), 1);
        assert_eq!(d.ids(), &[0, 1, 2]);
    }

    #[test]
    fn select_preserves_ids() {
        let d = toy().select(&[2, 0]);
        assert_eq!(d.ids(), &[2, 0]);
        assert_eq!(d.y(0), 1);
        assert_eq!(d.x(1), &[0.0, 1.0]);
    }

    #[test]
    fn remove_ids_drops_matching_rows() {
        let d = toy().remove_ids(&[1]);
        assert_eq!(d.len(), 2);
        assert_eq!(d.ids(), &[0, 2]);
        // Removing again is a no-op.
        assert_eq!(d.remove_ids(&[1]).len(), 2);
    }

    #[test]
    fn positions_where_filters() {
        let d = toy();
        let pos = d.positions_where(|_, x, y| y == 1 && x[0] == 1.0);
        assert_eq!(pos, vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn rejects_bad_labels() {
        let m = Matrix::from_rows(&[&[0.0]]);
        Dataset::new(m, vec![5], 2);
    }

    #[test]
    #[should_panic(expected = "row/label mismatch")]
    fn rejects_shape_mismatch() {
        let m = Matrix::from_rows(&[&[0.0]]);
        Dataset::new(m, vec![0, 1], 2);
    }
}
