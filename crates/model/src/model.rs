//! The [`Classifier`] trait: the contract between models and the influence
//! machinery.
//!
//! Sign/shape conventions (everything a downstream crate needs to know):
//!
//! - Parameters are one flat `Vec<f64>`; layout is model-private.
//! - `ℓ(z, θ)` is the *unregularized* per-example loss (negative
//!   log-likelihood). The training objective adds an L2 term:
//!   `L(θ) = (1/n) Σ ℓ(zᵢ, θ) + λ‖θ‖²`.
//! - [`Classifier::hvp`] multiplies by the Hessian of the **full** objective
//!   `L` (including the `2λI` from regularization), which is what the
//!   conjugate-gradient solver must invert.
//! - [`Classifier::grad_proba`] returns `∇θ p_c(x, θ)`: how a predicted
//!   class probability moves with the parameters. Holistic chains these
//!   through relaxed provenance polynomials; TwoStep sums them over marked
//!   mispredictions.

use crate::dataset::Dataset;

/// A differentiable classification model.
///
/// Implementations must be `Send + Sync` so influence scoring can fan out
/// across threads, and cloneable via [`Classifier::clone_box`] for
/// warm-started retraining.
pub trait Classifier: Send + Sync {
    /// Number of classes this model discriminates between.
    fn n_classes(&self) -> usize;

    /// Feature dimensionality expected by the model.
    fn dim(&self) -> usize;

    /// Total number of parameters.
    fn n_params(&self) -> usize;

    /// Borrow the flat parameter vector.
    fn params(&self) -> &[f64];

    /// Overwrite the flat parameter vector.
    ///
    /// # Panics
    /// Panics if `p.len() != self.n_params()`.
    fn set_params(&mut self, p: &[f64]);

    /// L2 regularization strength λ.
    fn l2(&self) -> f64;

    /// Class probabilities for one example (length `n_classes`, sums to 1).
    fn predict_proba(&self, x: &[f64]) -> Vec<f64>;

    /// Hard prediction: argmax of [`Classifier::predict_proba`].
    fn predict(&self, x: &[f64]) -> usize {
        rain_linalg::vecops::argmax(&self.predict_proba(x)).expect("non-empty proba")
    }

    /// Hard predictions for a batch of feature rows (one example per
    /// matrix row).
    ///
    /// The default routes through [`Classifier::predict_range_into`];
    /// implementations may override with an allocation-free batched path,
    /// but must return exactly the per-row `predict` results — the
    /// incremental query-refresh machinery relies on batched and per-row
    /// inference agreeing bit for bit.
    fn predict_batch(&self, x: &rain_linalg::Matrix) -> Vec<usize> {
        let mut out = vec![0usize; x.rows()];
        self.predict_range_into(x, 0, &mut out);
        out
    }

    /// Hard predictions for the row range `start .. start + out.len()`
    /// of `x`, written into `out` — the unit the parallel refresh path
    /// shards over (each worker owns a disjoint output slice).
    ///
    /// The default walks the rows through [`Classifier::predict`];
    /// implementations overriding [`Classifier::predict_batch`] with an
    /// allocation-free kernel should override this consistently — both
    /// must return exactly the per-row `predict` results, bit for bit.
    fn predict_range_into(&self, x: &rain_linalg::Matrix, start: usize, out: &mut [usize]) {
        for (k, slot) in out.iter_mut().enumerate() {
            *slot = self.predict(x.row(start + k));
        }
    }

    /// Unregularized per-example loss `ℓ(z, θ)`.
    fn example_loss(&self, x: &[f64], y: usize) -> f64;

    /// Per-example loss gradient `∇θ ℓ(z, θ)` written into `out`.
    fn example_grad_into(&self, x: &[f64], y: usize, out: &mut [f64]);

    /// Per-example loss gradient, allocating.
    fn example_grad(&self, x: &[f64], y: usize) -> Vec<f64> {
        let mut g = vec![0.0; self.n_params()];
        self.example_grad_into(x, y, &mut g);
        g
    }

    /// Dot product `∇θ ℓ(z, θ) · v` (may avoid materializing the gradient).
    fn example_grad_dot(&self, x: &[f64], y: usize, v: &[f64]) -> f64 {
        let g = self.example_grad(x, y);
        rain_linalg::vecops::dot(&g, v)
    }

    /// Full training objective `L(θ) = (1/n) Σ ℓ + λ‖θ‖²`.
    fn loss(&self, data: &Dataset) -> f64 {
        let n = data.len().max(1) as f64;
        let mut sum = 0.0;
        for i in 0..data.len() {
            sum += self.example_loss(data.x(i), data.y(i));
        }
        sum / n + self.l2() * rain_linalg::vecops::norm2_sq(self.params())
    }

    /// Gradient of the full training objective.
    fn grad(&self, data: &Dataset) -> Vec<f64> {
        let n = data.len().max(1) as f64;
        let mut g = vec![0.0; self.n_params()];
        let mut buf = vec![0.0; self.n_params()];
        for i in 0..data.len() {
            self.example_grad_into(data.x(i), data.y(i), &mut buf);
            rain_linalg::vecops::axpy(1.0 / n, &buf, &mut g);
        }
        rain_linalg::vecops::axpy(2.0 * self.l2(), self.params(), &mut g);
        g
    }

    /// Hessian-vector product `∇²L(θ)·v` of the full objective (with the
    /// `2λ v` regularization term included).
    fn hvp(&self, data: &Dataset, v: &[f64]) -> Vec<f64>;

    /// Gradient of the predicted probability of `class`: `∇θ p_class(x, θ)`.
    fn grad_proba(&self, x: &[f64], class: usize) -> Vec<f64>;

    /// Clone into a boxed trait object (for warm-started retraining).
    fn clone_box(&self) -> Box<dyn Classifier>;

    /// A short human-readable name ("logistic", "softmax", "mlp").
    fn name(&self) -> &'static str;
}

impl Clone for Box<dyn Classifier> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// Finite-difference helpers shared by the derivative tests of every model.
///
/// Exposed as a public module (not `#[cfg(test)]`) so downstream crates'
/// tests can reuse it against their own `q(θ)` encodings.
pub mod check {
    use super::Classifier;
    use crate::dataset::Dataset;

    /// Central-difference gradient of the full objective at the current
    /// parameters. O(n_params × dataset); for tests only.
    pub fn fd_grad(model: &dyn Classifier, data: &Dataset, eps: f64) -> Vec<f64> {
        let theta = model.params().to_vec();
        let mut g = vec![0.0; theta.len()];
        let mut probe = model.clone_box();
        for j in 0..theta.len() {
            let mut tp = theta.clone();
            tp[j] += eps;
            probe.set_params(&tp);
            let up = probe.loss(data);
            tp[j] -= 2.0 * eps;
            probe.set_params(&tp);
            let dn = probe.loss(data);
            g[j] = (up - dn) / (2.0 * eps);
        }
        g
    }

    /// Central-difference Hessian-vector product `(∇L(θ+εv) − ∇L(θ−εv))/2ε`.
    pub fn fd_hvp(model: &dyn Classifier, data: &Dataset, v: &[f64], eps: f64) -> Vec<f64> {
        let theta = model.params().to_vec();
        let mut probe = model.clone_box();
        let tp: Vec<f64> = theta.iter().zip(v).map(|(t, vi)| t + eps * vi).collect();
        probe.set_params(&tp);
        let gp = probe.grad(data);
        let tm: Vec<f64> = theta.iter().zip(v).map(|(t, vi)| t - eps * vi).collect();
        probe.set_params(&tm);
        let gm = probe.grad(data);
        gp.iter()
            .zip(&gm)
            .map(|(a, b)| (a - b) / (2.0 * eps))
            .collect()
    }

    /// Central-difference gradient of `p_class(x, θ)`.
    pub fn fd_grad_proba(model: &dyn Classifier, x: &[f64], class: usize, eps: f64) -> Vec<f64> {
        let theta = model.params().to_vec();
        let mut g = vec![0.0; theta.len()];
        let mut probe = model.clone_box();
        for j in 0..theta.len() {
            let mut tp = theta.clone();
            tp[j] += eps;
            probe.set_params(&tp);
            let up = probe.predict_proba(x)[class];
            tp[j] -= 2.0 * eps;
            probe.set_params(&tp);
            let dn = probe.predict_proba(x)[class];
            g[j] = (up - dn) / (2.0 * eps);
        }
        g
    }
}
