//! L-BFGS training (the paper trains all models with L-BFGS, §6.1.6).
//!
//! A standard limited-memory BFGS with two-loop recursion and Armijo
//! backtracking line search. Curvature pairs are only stored when
//! `sᵀy > 0`, which keeps the implicit inverse-Hessian approximation
//! positive definite even on the non-convex MLP objective.

use crate::dataset::Dataset;
use crate::model::Classifier;
use rain_linalg::vecops;
use std::collections::VecDeque;

/// Configuration for [`train_lbfgs`].
#[derive(Debug, Clone)]
pub struct LbfgsConfig {
    /// Maximum outer iterations.
    pub max_iters: usize,
    /// Stop when the gradient infinity-norm drops below this.
    pub grad_tol: f64,
    /// History size `m` of the limited memory.
    pub memory: usize,
    /// Armijo sufficient-decrease constant.
    pub armijo_c: f64,
    /// Line-search backtracking factor.
    pub backtrack: f64,
    /// Maximum backtracking steps per iteration.
    pub max_line_search: usize,
}

impl Default for LbfgsConfig {
    fn default() -> Self {
        LbfgsConfig {
            max_iters: 200,
            grad_tol: 1e-6,
            memory: 10,
            armijo_c: 1e-4,
            backtrack: 0.5,
            max_line_search: 30,
        }
    }
}

impl LbfgsConfig {
    /// Fewer iterations; used for warm restarts inside train–rank–fix.
    pub fn warm() -> Self {
        LbfgsConfig {
            max_iters: 60,
            ..Default::default()
        }
    }
}

/// Outcome of a training run.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Iterations actually performed.
    pub iters: usize,
    /// Final full-objective value.
    pub final_loss: f64,
    /// Final gradient infinity norm.
    pub grad_norm: f64,
    /// True when `grad_tol` was reached before `max_iters`.
    pub converged: bool,
}

/// Minimize `model.loss(data)` in place with L-BFGS, starting from the
/// model's current parameters (so retraining is warm-started for free).
pub fn train_lbfgs(model: &mut dyn Classifier, data: &Dataset, cfg: &LbfgsConfig) -> TrainReport {
    let n = model.n_params();
    let mut theta = model.params().to_vec();
    let mut loss = model.loss(data);
    let mut grad = model.grad(data);
    let mut s_hist: VecDeque<Vec<f64>> = VecDeque::with_capacity(cfg.memory);
    let mut y_hist: VecDeque<Vec<f64>> = VecDeque::with_capacity(cfg.memory);
    let mut rho_hist: VecDeque<f64> = VecDeque::with_capacity(cfg.memory);
    let mut iters = 0;

    for _ in 0..cfg.max_iters {
        let gnorm = vecops::norm_inf(&grad);
        if gnorm < cfg.grad_tol {
            return TrainReport {
                iters,
                final_loss: loss,
                grad_norm: gnorm,
                converged: true,
            };
        }
        iters += 1;

        // Two-loop recursion for the search direction d = -H_k⁻¹ g.
        let mut q = grad.clone();
        let k = s_hist.len();
        let mut alphas = vec![0.0; k];
        for i in (0..k).rev() {
            let a = rho_hist[i] * vecops::dot(&s_hist[i], &q);
            alphas[i] = a;
            vecops::axpy(-a, &y_hist[i], &mut q);
        }
        // Initial scaling γ = sᵀy / yᵀy of the most recent pair.
        if let (Some(s), Some(y)) = (s_hist.back(), y_hist.back()) {
            let gamma = vecops::dot(s, y) / vecops::dot(y, y).max(1e-30);
            vecops::scale(&mut q, gamma);
        }
        for i in 0..k {
            let beta = rho_hist[i] * vecops::dot(&y_hist[i], &q);
            vecops::axpy(alphas[i] - beta, &s_hist[i], &mut q);
        }
        let mut dir = q;
        vecops::scale(&mut dir, -1.0);

        // Guard against ascent directions (possible on non-convex losses).
        let mut slope = vecops::dot(&grad, &dir);
        if slope >= 0.0 {
            dir = grad.iter().map(|g| -g).collect();
            slope = vecops::dot(&grad, &dir);
            s_hist.clear();
            y_hist.clear();
            rho_hist.clear();
        }

        // Armijo backtracking.
        let mut step = 1.0;
        let mut accepted = false;
        let mut new_theta = vec![0.0; n];
        let mut new_loss = loss;
        for _ in 0..cfg.max_line_search {
            for ((nt, t), d) in new_theta.iter_mut().zip(&theta).zip(&dir) {
                *nt = t + step * d;
            }
            model.set_params(&new_theta);
            new_loss = model.loss(data);
            if new_loss <= loss + cfg.armijo_c * step * slope {
                accepted = true;
                break;
            }
            step *= cfg.backtrack;
        }
        if !accepted {
            // Line search failed; restore and stop.
            model.set_params(&theta);
            return TrainReport {
                iters,
                final_loss: loss,
                grad_norm: vecops::norm_inf(&grad),
                converged: false,
            };
        }

        let new_grad = model.grad(data);
        let s = vecops::sub(&new_theta, &theta);
        let y = vecops::sub(&new_grad, &grad);
        let sy = vecops::dot(&s, &y);
        if sy > 1e-10 {
            if s_hist.len() == cfg.memory {
                s_hist.pop_front();
                y_hist.pop_front();
                rho_hist.pop_front();
            }
            rho_hist.push_back(1.0 / sy);
            s_hist.push_back(s);
            y_hist.push_back(y);
        }
        theta = new_theta;
        loss = new_loss;
        grad = new_grad;
    }

    let gnorm = vecops::norm_inf(&grad);
    TrainReport {
        iters,
        final_loss: loss,
        grad_norm: gnorm,
        converged: gnorm < cfg.grad_tol,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logistic::LogisticRegression;
    use crate::mlp::Mlp;
    use crate::softmax::SoftmaxRegression;
    use rain_linalg::{Matrix, RainRng};

    fn blobs(n: usize, classes: usize, dim: usize, seed: u64) -> Dataset {
        let mut rng = RainRng::seed_from_u64(seed);
        let mut rows = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            let y = rng.below(classes);
            let mut x = rng.normal_vec(dim, 0.6);
            x[y % dim] += 2.5;
            rows.push(x);
            labels.push(y);
        }
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        Dataset::new(Matrix::from_rows(&refs), labels, classes)
    }

    fn accuracy_of(model: &dyn Classifier, data: &Dataset) -> f64 {
        let correct = (0..data.len())
            .filter(|&i| model.predict(data.x(i)) == data.y(i))
            .count();
        correct as f64 / data.len() as f64
    }

    #[test]
    fn lbfgs_fits_logistic_to_near_optimality() {
        let data = blobs(200, 2, 4, 1);
        let mut m = LogisticRegression::new(4, 0.01);
        let report = train_lbfgs(&mut m, &data, &LbfgsConfig::default());
        assert!(report.converged, "gnorm {}", report.grad_norm);
        assert!(accuracy_of(&m, &data) > 0.95);
    }

    #[test]
    fn lbfgs_fits_softmax() {
        let data = blobs(300, 4, 6, 2);
        let mut m = SoftmaxRegression::new(6, 4, 0.01);
        let report = train_lbfgs(&mut m, &data, &LbfgsConfig::default());
        assert!(report.converged);
        assert!(accuracy_of(&m, &data) > 0.9);
    }

    #[test]
    fn lbfgs_fits_mlp() {
        let data = blobs(300, 3, 5, 3);
        let mut m = Mlp::new(5, 12, 3, 0.005, 3);
        let report = train_lbfgs(
            &mut m,
            &data,
            &LbfgsConfig {
                max_iters: 400,
                ..Default::default()
            },
        );
        assert!(report.final_loss < 0.5, "loss {}", report.final_loss);
        assert!(accuracy_of(&m, &data) > 0.9);
    }

    #[test]
    fn warm_restart_converges_quickly() {
        let data = blobs(200, 2, 4, 4);
        let mut m = LogisticRegression::new(4, 0.01);
        let cold = train_lbfgs(&mut m, &data, &LbfgsConfig::default());
        // Remove a handful of records and retrain warm.
        let smaller = data.remove_ids(&[0, 1, 2, 3, 4]);
        let warm = train_lbfgs(&mut m, &smaller, &LbfgsConfig::warm());
        assert!(
            warm.iters <= cold.iters,
            "warm {} vs cold {}",
            warm.iters,
            cold.iters
        );
        assert!(warm.converged);
    }

    #[test]
    fn gradient_norm_shrinks_at_optimum() {
        let data = blobs(100, 2, 3, 5);
        let mut m = LogisticRegression::new(3, 0.05);
        let report = train_lbfgs(&mut m, &data, &LbfgsConfig::default());
        assert!(report.grad_norm < 1e-6);
        // First-order optimality: loss increases in any direction.
        let base = m.loss(&data);
        let mut rng = RainRng::seed_from_u64(6);
        for _ in 0..5 {
            let dir = rng.normal_vec(m.n_params(), 1e-3);
            let mut probe = m.clone();
            let p = vecops::add(m.params(), &dir);
            probe.set_params(&p);
            assert!(probe.loss(&data) >= base - 1e-9);
        }
    }

    #[test]
    fn handles_empty_dataset_gracefully() {
        let data = blobs(10, 2, 3, 7).select(&[]);
        let mut m = LogisticRegression::new(3, 0.1);
        let report = train_lbfgs(&mut m, &data, &LbfgsConfig::default());
        // Loss is pure regularization; optimum is θ = 0.
        assert!(report.converged);
        assert!(vecops::norm_inf(m.params()) < 1e-6);
    }
}
