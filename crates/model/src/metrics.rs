//! Classification metrics (accuracy and the F1 score of Figure 4).

use crate::dataset::Dataset;
use crate::model::Classifier;

/// Fraction of examples the model labels correctly.
pub fn accuracy(model: &dyn Classifier, data: &Dataset) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    let correct = (0..data.len())
        .filter(|&i| model.predict(data.x(i)) == data.y(i))
        .count();
    correct as f64 / data.len() as f64
}

/// Binary confusion counts with class 1 as the positive class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BinaryConfusion {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// True negatives.
    pub tn: usize,
    /// False negatives.
    pub fn_: usize,
}

impl BinaryConfusion {
    /// Precision `tp / (tp + fp)` (0 when undefined).
    pub fn precision(&self) -> f64 {
        let denom = self.tp + self.fp;
        if denom == 0 {
            0.0
        } else {
            self.tp as f64 / denom as f64
        }
    }

    /// Recall `tp / (tp + fn)` (0 when undefined).
    pub fn recall(&self) -> f64 {
        let denom = self.tp + self.fn_;
        if denom == 0 {
            0.0
        } else {
            self.tp as f64 / denom as f64
        }
    }

    /// F1 = harmonic mean of precision and recall (0 when undefined).
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

/// Confusion counts of a binary model on a dataset.
pub fn confusion_binary(model: &dyn Classifier, data: &Dataset) -> BinaryConfusion {
    assert_eq!(
        model.n_classes(),
        2,
        "confusion_binary needs a binary model"
    );
    let mut c = BinaryConfusion::default();
    for i in 0..data.len() {
        let pred = model.predict(data.x(i));
        match (pred, data.y(i)) {
            (1, 1) => c.tp += 1,
            (1, 0) => c.fp += 1,
            (0, 0) => c.tn += 1,
            (0, 1) => c.fn_ += 1,
            _ => unreachable!("binary labels"),
        }
    }
    c
}

/// F1 score of a binary model on a dataset (Figure 4's y-axis).
pub fn f1_score(model: &dyn Classifier, data: &Dataset) -> f64 {
    confusion_binary(model, data).f1()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logistic::LogisticRegression;
    use rain_linalg::Matrix;

    /// A fixed "model" via a logistic regression with hand-set weights that
    /// implement `predict(x) = x[0] > 0.5`.
    fn threshold_model() -> LogisticRegression {
        let mut m = LogisticRegression::new(1, 0.0);
        m.set_params(&[10.0, -5.0]);
        m
    }

    fn data(xs: &[f64], ys: &[usize]) -> Dataset {
        let rows: Vec<Vec<f64>> = xs.iter().map(|&x| vec![x]).collect();
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        Dataset::new(Matrix::from_rows(&refs), ys.to_vec(), 2)
    }

    #[test]
    fn confusion_counts() {
        let m = threshold_model();
        // preds: 1, 1, 0, 0 ; labels: 1, 0, 0, 1
        let d = data(&[1.0, 1.0, 0.0, 0.0], &[1, 0, 0, 1]);
        let c = confusion_binary(&m, &d);
        assert_eq!(
            c,
            BinaryConfusion {
                tp: 1,
                fp: 1,
                tn: 1,
                fn_: 1
            }
        );
        assert!((c.precision() - 0.5).abs() < 1e-12);
        assert!((c.recall() - 0.5).abs() < 1e-12);
        assert!((c.f1() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn perfect_classifier_scores_one() {
        let m = threshold_model();
        let d = data(&[1.0, 0.0, 1.0], &[1, 0, 1]);
        assert_eq!(accuracy(&m, &d), 1.0);
        assert_eq!(f1_score(&m, &d), 1.0);
    }

    #[test]
    fn degenerate_cases_are_zero_not_nan() {
        let c = BinaryConfusion::default();
        assert_eq!(c.precision(), 0.0);
        assert_eq!(c.recall(), 0.0);
        assert_eq!(c.f1(), 0.0);
        let m = threshold_model();
        assert_eq!(accuracy(&m, &data(&[], &[])), 0.0);
    }
}
