//! Binary encoding primitives shared by log records and snapshots.
//!
//! Everything is little-endian and length-prefixed; floats travel as raw
//! [`f64::to_bits`] patterns so `-0.0`, NaN payloads, and every last ulp
//! round-trip exactly — recovery promises bit-identity, not approximate
//! equality. The format carries no self-description beyond small type
//! tags: both sides are this workspace, and the outer record/snapshot
//! framing already carries a magic and a checksum.

use crate::StorageError;
use rain_linalg::Matrix;
use rain_model::Dataset;
use rain_sql::table::{ColType, Column, Schema, Table};
use rain_sql::Value;

/// Append-only byte sink for encoding.
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// Fresh empty encoder.
    pub fn new() -> Self {
        Enc::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Append one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a bool as one byte.
    pub fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Append a little-endian u32.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian u64.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian i64.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an f64 as its exact bit pattern.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// Cursor over encoded bytes; every getter fails loudly on truncation.
#[derive(Debug)]
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

fn corrupt(what: &str) -> StorageError {
    StorageError::Corrupt(format!("decode: {what}"))
}

impl<'a> Dec<'a> {
    /// Decode from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }

    /// True when every byte has been consumed.
    pub fn is_done(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StorageError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| corrupt("unexpected end of input"))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, StorageError> {
        Ok(self.take(1)?[0])
    }

    /// Read a bool (strictly 0 or 1).
    pub fn bool(&mut self) -> Result<bool, StorageError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(corrupt(&format!("bad bool byte {b}"))),
        }
    }

    /// Read a little-endian u32.
    pub fn u32(&mut self) -> Result<u32, StorageError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a little-endian u64.
    pub fn u64(&mut self) -> Result<u64, StorageError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a little-endian i64.
    pub fn i64(&mut self) -> Result<i64, StorageError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read an f64 from its exact bit pattern.
    pub fn f64(&mut self) -> Result<f64, StorageError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read a length (u64 on the wire) that must fit the remaining input
    /// when each element takes at least `min_width` bytes — the sanity
    /// check that keeps a corrupt length from allocating gigabytes.
    pub fn len(&mut self, min_width: usize) -> Result<usize, StorageError> {
        let n = self.u64()?;
        let remaining = (self.buf.len() - self.pos) as u64;
        if n.saturating_mul(min_width.max(1) as u64) > remaining {
            return Err(corrupt(&format!("implausible length {n}")));
        }
        Ok(n as usize)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, StorageError> {
        let n = self.len(1)?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| corrupt("invalid utf-8 in string"))
    }
}

// ---------------------------------------------------------------------------
// Composite encoders/decoders
// ---------------------------------------------------------------------------

fn col_type_tag(ty: ColType) -> u8 {
    match ty {
        ColType::Bool => 0,
        ColType::Int => 1,
        ColType::Float => 2,
        ColType::Str => 3,
    }
}

fn col_type_from_tag(tag: u8) -> Result<ColType, StorageError> {
    Ok(match tag {
        0 => ColType::Bool,
        1 => ColType::Int,
        2 => ColType::Float,
        3 => ColType::Str,
        t => return Err(corrupt(&format!("unknown column type tag {t}"))),
    })
}

/// Encode a scalar value (tag + payload).
pub fn put_value(e: &mut Enc, v: &Value) {
    match v {
        Value::Null => e.u8(0),
        Value::Bool(b) => {
            e.u8(1);
            e.bool(*b);
        }
        Value::Int(x) => {
            e.u8(2);
            e.i64(*x);
        }
        Value::Float(x) => {
            e.u8(3);
            e.f64(*x);
        }
        Value::Str(s) => {
            e.u8(4);
            e.str(s);
        }
    }
}

/// Decode a scalar value.
pub fn get_value(d: &mut Dec<'_>) -> Result<Value, StorageError> {
    Ok(match d.u8()? {
        0 => Value::Null,
        1 => Value::Bool(d.bool()?),
        2 => Value::Int(d.i64()?),
        3 => Value::Float(d.f64()?),
        4 => Value::Str(d.str()?),
        t => return Err(corrupt(&format!("unknown value tag {t}"))),
    })
}

fn put_bitmap(e: &mut Enc, mask: &[bool]) {
    e.u64(mask.len() as u64);
    for &b in mask {
        e.bool(b);
    }
}

fn get_bitmap(d: &mut Dec<'_>) -> Result<Vec<bool>, StorageError> {
    let n = d.len(1)?;
    let mut mask = Vec::with_capacity(n);
    for _ in 0..n {
        mask.push(d.bool()?);
    }
    Ok(mask)
}

/// Encode a feature matrix (rows, cols, raw f64 bits).
pub fn put_matrix(e: &mut Enc, m: &Matrix) {
    e.u64(m.rows() as u64);
    e.u64(m.cols() as u64);
    for &v in m.as_slice() {
        e.f64(v);
    }
}

/// Decode a feature matrix.
pub fn get_matrix(d: &mut Dec<'_>) -> Result<Matrix, StorageError> {
    let rows = d.len(0)?;
    let cols = d.len(0)?;
    let n = rows
        .checked_mul(cols)
        .ok_or_else(|| corrupt("matrix shape overflow"))?;
    let mut data = Vec::with_capacity(n);
    for _ in 0..n {
        data.push(d.f64()?);
    }
    Ok(Matrix::from_vec(rows, cols, data))
}

fn put_column(e: &mut Enc, c: &Column) {
    e.u8(col_type_tag(c.ty()));
    e.u64(c.len() as u64);
    match c {
        Column::Bool(v) => {
            for &b in v {
                e.bool(b);
            }
        }
        Column::Int(v) => {
            for &x in v {
                e.i64(x);
            }
        }
        Column::Float(v) => {
            for &x in v {
                e.f64(x);
            }
        }
        Column::Str(v) => {
            for s in v {
                e.str(s);
            }
        }
    }
}

fn get_column(d: &mut Dec<'_>) -> Result<Column, StorageError> {
    let ty = col_type_from_tag(d.u8()?)?;
    Ok(match ty {
        ColType::Bool => {
            let n = d.len(1)?;
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push(d.bool()?);
            }
            Column::Bool(v)
        }
        ColType::Int => {
            let n = d.len(8)?;
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push(d.i64()?);
            }
            Column::Int(v)
        }
        ColType::Float => {
            let n = d.len(8)?;
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push(d.f64()?);
            }
            Column::Float(v)
        }
        ColType::Str => {
            let n = d.len(8)?;
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push(d.str()?);
            }
            Column::Str(v)
        }
    })
}

/// Encode a full table: schema, typed columns, per-column null bitmaps,
/// optional feature matrix.
pub fn put_table(e: &mut Enc, t: &Table) {
    let schema = t.schema();
    e.u64(schema.len() as u64);
    for def in schema.iter() {
        e.str(&def.name);
        e.u8(col_type_tag(def.ty));
    }
    for ci in 0..schema.len() {
        put_column(e, t.column(ci));
    }
    for ci in 0..schema.len() {
        match t.null_mask(ci) {
            Some(mask) => {
                e.u8(1);
                put_bitmap(e, mask);
            }
            None => e.u8(0),
        }
    }
    match t.features() {
        Some(m) => {
            e.u8(1);
            put_matrix(e, m);
        }
        None => e.u8(0),
    }
}

/// Decode a table encoded by [`put_table`], reconstructing null bitmaps
/// and features bit-identically via [`Table::from_parts`].
pub fn get_table(d: &mut Dec<'_>) -> Result<Table, StorageError> {
    let n_cols = d.len(2)?;
    let mut schema = Schema::default();
    for _ in 0..n_cols {
        let name = d.str()?;
        let ty = col_type_from_tag(d.u8()?)?;
        if schema.index_of(&name).is_some() {
            return Err(corrupt(&format!("duplicate column {name}")));
        }
        schema.push(&name, ty);
    }
    let mut columns = Vec::with_capacity(n_cols);
    for _ in 0..n_cols {
        columns.push(get_column(d)?);
    }
    let n_rows = columns.first().map_or(0, Column::len);
    let mut nulls = Vec::with_capacity(n_cols);
    for _ in 0..n_cols {
        nulls.push(match d.u8()? {
            0 => None,
            1 => Some(get_bitmap(d)?),
            t => return Err(corrupt(&format!("bad bitmap presence tag {t}"))),
        });
    }
    let features = match d.u8()? {
        0 => None,
        1 => Some(get_matrix(d)?),
        t => return Err(corrupt(&format!("bad features presence tag {t}"))),
    };
    for (i, c) in columns.iter().enumerate() {
        let def = schema.col(i);
        if c.ty() != def.ty || c.len() != n_rows {
            return Err(corrupt(&format!("column {} shape mismatch", def.name)));
        }
        if let Some(mask) = &nulls[i] {
            if mask.len() != n_rows {
                return Err(corrupt(&format!("bitmap {} length mismatch", def.name)));
            }
        }
    }
    if let Some(m) = &features {
        if m.rows() != n_rows {
            return Err(corrupt("feature matrix row count mismatch"));
        }
    }
    Ok(Table::from_parts(schema, columns, nulls, features))
}

/// Encode a training set: features, labels, record ids, class count.
pub fn put_dataset(e: &mut Enc, data: &Dataset) {
    put_matrix(e, data.features());
    e.u64(data.len() as u64);
    for &y in data.labels() {
        e.u64(y as u64);
    }
    for &id in data.ids() {
        e.u64(id as u64);
    }
    e.u64(data.n_classes() as u64);
}

/// Decode a training set encoded by [`put_dataset`].
pub fn get_dataset(d: &mut Dec<'_>) -> Result<Dataset, StorageError> {
    let features = get_matrix(d)?;
    let n = d.len(8)?;
    if n != features.rows() {
        return Err(corrupt("dataset label count mismatch"));
    }
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        labels.push(d.u64()? as usize);
    }
    let mut ids = Vec::with_capacity(n);
    for _ in 0..n {
        ids.push(d.u64()? as usize);
    }
    let n_classes = d.u64()? as usize;
    if n_classes < 2 {
        return Err(corrupt("dataset with fewer than two classes"));
    }
    if labels.iter().any(|&y| y >= n_classes) {
        return Err(corrupt("dataset label out of range"));
    }
    Ok(Dataset::with_ids(features, labels, ids, n_classes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rain_sql::table::{ColType, Schema};

    fn table_eq(a: &Table, b: &Table) {
        assert_eq!(a.schema(), b.schema());
        assert_eq!(a.n_rows(), b.n_rows());
        for ci in 0..a.schema().len() {
            // NaN-bearing float columns fail Column's PartialEq even when
            // bit-identical; compare floats by bits instead.
            match (a.column(ci), b.column(ci)) {
                (Column::Float(x), Column::Float(y)) => {
                    let xb: Vec<u64> = x.iter().map(|v| v.to_bits()).collect();
                    let yb: Vec<u64> = y.iter().map(|v| v.to_bits()).collect();
                    assert_eq!(xb, yb, "float column {ci}");
                }
                (x, y) => assert_eq!(x, y, "column {ci}"),
            }
            assert_eq!(a.null_mask(ci), b.null_mask(ci), "bitmap {ci}");
        }
        match (a.features(), b.features()) {
            (None, None) => {}
            (Some(x), Some(y)) => {
                assert_eq!(x.rows(), y.rows());
                assert_eq!(x.cols(), y.cols());
                let xb: Vec<u64> = x.as_slice().iter().map(|v| v.to_bits()).collect();
                let yb: Vec<u64> = y.as_slice().iter().map(|v| v.to_bits()).collect();
                assert_eq!(xb, yb, "feature bits");
            }
            _ => panic!("feature presence mismatch"),
        }
    }

    #[test]
    fn table_round_trip_with_nulls_and_features() {
        let schema = Schema::new(&[
            ("id", ColType::Int),
            ("name", ColType::Str),
            ("score", ColType::Float),
            ("ok", ColType::Bool),
        ]);
        let mut t = Table::from_columns(
            schema,
            vec![
                Column::Int(vec![1, 2]),
                Column::Str(vec!["ada".into(), "bob".into()]),
                Column::Float(vec![0.5, -0.0]),
                Column::Bool(vec![true, false]),
            ],
        )
        .with_features(Matrix::from_vec(2, 3, vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6]));
        t.push_row(
            vec![
                Value::Null,
                Value::Str(String::new()),
                Value::Float(f64::NAN),
                Value::Null,
            ],
            Some(&[f64::INFINITY, -0.0, 1e-308]),
        );
        let mut e = Enc::new();
        put_table(&mut e, &t);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        let back = get_table(&mut d).unwrap();
        assert!(d.is_done());
        table_eq(&t, &back);
        // NaN survives by bits even though Column's PartialEq would reject it.
        assert_eq!(
            back.column(2).as_f64s().unwrap()[2].to_bits(),
            f64::NAN.to_bits()
        );
    }

    #[test]
    fn dataset_round_trip_keeps_ids() {
        let data = Dataset::with_ids(
            Matrix::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]),
            vec![0, 1, 1],
            vec![10, 20, 30],
            2,
        );
        let mut e = Enc::new();
        put_dataset(&mut e, &data);
        let bytes = e.into_bytes();
        let back = get_dataset(&mut Dec::new(&bytes)).unwrap();
        assert_eq!(back.ids(), data.ids());
        assert_eq!(back.labels(), data.labels());
        assert_eq!(back.n_classes(), data.n_classes());
        assert_eq!(back.features().as_slice(), data.features().as_slice());
    }

    #[test]
    fn values_round_trip() {
        let vals = vec![
            Value::Null,
            Value::Bool(true),
            Value::Int(-7),
            Value::Float(-0.0),
            Value::Str("héllo".into()),
        ];
        let mut e = Enc::new();
        for v in &vals {
            put_value(&mut e, v);
        }
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        for v in &vals {
            let got = get_value(&mut d).unwrap();
            match (v, &got) {
                (Value::Float(a), Value::Float(b)) => assert_eq!(a.to_bits(), b.to_bits()),
                _ => assert_eq!(*v, got),
            }
        }
        assert!(d.is_done());
    }

    #[test]
    fn truncated_input_is_an_error_not_a_panic() {
        let mut e = Enc::new();
        put_value(&mut e, &Value::Str("hello world".into()));
        let bytes = e.into_bytes();
        for cut in 0..bytes.len() {
            assert!(get_value(&mut Dec::new(&bytes[..cut])).is_err());
        }
    }

    #[test]
    fn implausible_lengths_are_rejected() {
        // A u64 length of u64::MAX must not attempt the allocation.
        let mut e = Enc::new();
        e.u64(u64::MAX);
        let bytes = e.into_bytes();
        assert!(Dec::new(&bytes).len(1).is_err());
        assert!(Dec::new(&bytes).str().is_err());
    }
}
