//! Full-state snapshots: everything a session holds, in one checksummed
//! file, named by the commitlog offset it covers.
//!
//! A snapshot file `snap-<offset>.bin` means "this is the exact state
//! produced by replaying the log up to `offset`". Recovery loads the
//! newest snapshot that validates and replays only the log tail after its
//! offset — so the log can grow unboundedly between snapshots without
//! recovery time growing with total history.
//!
//! Writes are atomic: the body goes to a `.tmp` sibling, is fsynced,
//! renamed into place, and the directory is fsynced — a crash mid-write
//! leaves either the old set of snapshots or the new one, never a
//! half-file under the real name (a torn `.tmp` fails its checksum and is
//! ignored anyway).

use crate::codec::{self, Dec, Enc};
use crate::{crc32, StorageError};
use rain_model::Dataset;
use rain_sql::table::Table;
use rain_sql::TableVersion;
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 8] = b"RAINSNP1";
/// Older snapshots kept alongside the newest (fallbacks for a torn or
/// bit-rotted latest).
const KEEP_SNAPSHOTS: usize = 2;

/// The full durable state of one session at a log offset.
#[derive(Debug)]
pub struct SnapshotState {
    /// Verbatim session-creation JSON (see
    /// [`Record::SessionMeta`](crate::Record::SessionMeta)).
    pub spec: String,
    /// Flat model parameters, exact bits.
    pub params: Vec<f64>,
    /// Training set, record ids included.
    pub train: Dataset,
    /// Tables in registration order: name, two-part version, contents.
    /// Registration order matters — replaying it through
    /// [`Database::register_with_version`](rain_sql::Database::register_with_version)
    /// reissues the same [`TableId`](rain_sql::TableId)s.
    pub tables: Vec<(String, TableVersion, Table)>,
    /// Secondary index definitions: table name, column name, and
    /// [`rain_sql::IndexKind`] wire code. Definitions only — the index
    /// data is rebuilt from the recovered tables.
    pub indexes: Vec<(String, String, u8)>,
}

impl SnapshotState {
    fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.str(&self.spec);
        e.u64(self.params.len() as u64);
        for &p in &self.params {
            e.f64(p);
        }
        codec::put_dataset(&mut e, &self.train);
        e.u64(self.tables.len() as u64);
        for (name, version, table) in &self.tables {
            e.str(name);
            e.u64(version.gen);
            e.u64(version.delta);
            codec::put_table(&mut e, table);
        }
        e.u64(self.indexes.len() as u64);
        for (table, column, kind) in &self.indexes {
            e.str(table);
            e.str(column);
            e.u8(*kind);
        }
        e.into_bytes()
    }

    fn decode(bytes: &[u8]) -> Result<SnapshotState, StorageError> {
        let mut d = Dec::new(bytes);
        let spec = d.str()?;
        let n = d.len(8)?;
        let mut params = Vec::with_capacity(n);
        for _ in 0..n {
            params.push(d.f64()?);
        }
        let train = codec::get_dataset(&mut d)?;
        let n_tables = d.len(8)?;
        let mut tables = Vec::with_capacity(n_tables);
        for _ in 0..n_tables {
            let name = d.str()?;
            let version = TableVersion {
                gen: d.u64()?,
                delta: d.u64()?,
            };
            tables.push((name, version, codec::get_table(&mut d)?));
        }
        let n_indexes = d.len(8)?;
        let mut indexes = Vec::with_capacity(n_indexes);
        for _ in 0..n_indexes {
            indexes.push((d.str()?, d.str()?, d.u8()?));
        }
        if !d.is_done() {
            return Err(StorageError::Corrupt(
                "trailing bytes after snapshot body".into(),
            ));
        }
        Ok(SnapshotState {
            spec,
            params,
            train,
            tables,
            indexes,
        })
    }
}

fn snapshot_path(dir: &Path, offset: u64) -> PathBuf {
    dir.join(format!("snap-{offset:020}.bin"))
}

/// Parse the covered offset out of a snapshot file name.
fn offset_of(path: &Path) -> Option<u64> {
    let name = path.file_name()?.to_str()?;
    let rest = name.strip_prefix("snap-")?.strip_suffix(".bin")?;
    rest.parse().ok()
}

/// Write a snapshot covering the log up to `offset`, atomically, and
/// prune old snapshots down to `KEEP_SNAPSHOTS`. Returns the final
/// path.
pub fn write_snapshot(
    dir: &Path,
    offset: u64,
    state: &SnapshotState,
) -> Result<PathBuf, StorageError> {
    let body = state.encode();
    let path = snapshot_path(dir, offset);
    let tmp = path.with_extension("bin.tmp");
    {
        let mut f = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp)?;
        f.write_all(MAGIC)?;
        f.write_all(&(body.len() as u64).to_le_bytes())?;
        f.write_all(&crc32(&body).to_le_bytes())?;
        f.write_all(&body)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, &path)?;
    // Make the rename itself durable.
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
    prune(dir, offset);
    Ok(path)
}

/// Delete snapshots older than the newest [`KEEP_SNAPSHOTS`], plus any
/// stale `.tmp` leftovers. Best-effort: failures are ignored.
fn prune(dir: &Path, _newest: u64) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut snaps: Vec<(u64, PathBuf)> = Vec::new();
    for entry in entries.flatten() {
        let p = entry.path();
        if p.extension().is_some_and(|e| e == "tmp") {
            let _ = fs::remove_file(&p);
        } else if let Some(off) = offset_of(&p) {
            snaps.push((off, p));
        }
    }
    snaps.sort_by_key(|&(off, _)| std::cmp::Reverse(off));
    for (_, p) in snaps.into_iter().skip(KEEP_SNAPSHOTS) {
        let _ = fs::remove_file(p);
    }
}

/// Load the newest snapshot in `dir` that validates, returning it with
/// the log offset it covers. A torn or corrupt newest snapshot falls back
/// to the next older one; no snapshot at all is `None` (recover by
/// replaying the whole log).
pub fn load_latest(dir: &Path) -> Result<Option<(u64, SnapshotState)>, StorageError> {
    let Ok(entries) = fs::read_dir(dir) else {
        return Ok(None);
    };
    let mut snaps: Vec<(u64, PathBuf)> = entries
        .flatten()
        .filter_map(|e| {
            let p = e.path();
            offset_of(&p).map(|off| (off, p))
        })
        .collect();
    snaps.sort_by_key(|&(off, _)| std::cmp::Reverse(off));
    for (off, path) in snaps {
        match load_one(&path) {
            Ok(state) => return Ok(Some((off, state))),
            Err(StorageError::Corrupt(_)) => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(None)
}

fn load_one(path: &Path) -> Result<SnapshotState, StorageError> {
    let mut f = File::open(path)?;
    let mut head = [0u8; 20];
    f.read_exact(&mut head)
        .map_err(|_| StorageError::Corrupt("snapshot shorter than its header".into()))?;
    if &head[0..8] != MAGIC {
        return Err(StorageError::Corrupt(format!(
            "{} is not a rain snapshot (bad magic)",
            path.display()
        )));
    }
    let len = u64::from_le_bytes(head[8..16].try_into().unwrap());
    let crc = u32::from_le_bytes(head[16..20].try_into().unwrap());
    let mut body = Vec::new();
    f.read_to_end(&mut body)?;
    if body.len() as u64 != len || crc32(&body) != crc {
        return Err(StorageError::Corrupt(format!(
            "snapshot {} failed its checksum",
            path.display()
        )));
    }
    SnapshotState::decode(&body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rain_linalg::Matrix;
    use rain_sql::table::{ColType, Column, Schema};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("rain-snap-test-{}-{tag}-{n}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn state(marker: i64) -> SnapshotState {
        SnapshotState {
            spec: format!("{{\"marker\":{marker}}}"),
            params: vec![0.5, -0.25, marker as f64],
            train: Dataset::with_ids(
                Matrix::from_vec(2, 1, vec![1.0, 2.0]),
                vec![0, 1],
                vec![7, 8],
                2,
            ),
            tables: vec![(
                "t".into(),
                TableVersion { gen: 3, delta: 1 },
                Table::from_columns(
                    Schema::new(&[("x", ColType::Int)]),
                    vec![Column::Int(vec![marker])],
                ),
            )],
            indexes: vec![("t".into(), "x".into(), 0)],
        }
    }

    #[test]
    fn write_load_round_trip() {
        let dir = temp_dir("rt");
        write_snapshot(&dir, 100, &state(1)).unwrap();
        let (off, got) = load_latest(&dir).unwrap().unwrap();
        assert_eq!(off, 100);
        assert_eq!(got.encode(), state(1).encode());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn newest_wins_and_corrupt_newest_falls_back() {
        let dir = temp_dir("fallback");
        write_snapshot(&dir, 100, &state(1)).unwrap();
        write_snapshot(&dir, 200, &state(2)).unwrap();
        let (off, got) = load_latest(&dir).unwrap().unwrap();
        assert_eq!(off, 200);
        assert_eq!(got.encode(), state(2).encode());
        // Flip a byte in the newest body: loading falls back to offset 100.
        let newest = snapshot_path(&dir, 200);
        let mut bytes = fs::read(&newest).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(&newest, bytes).unwrap();
        let (off, got) = load_latest(&dir).unwrap().unwrap();
        assert_eq!(off, 100);
        assert_eq!(got.encode(), state(1).encode());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn old_snapshots_are_pruned() {
        let dir = temp_dir("prune");
        for off in [10, 20, 30, 40] {
            write_snapshot(&dir, off, &state(off as i64)).unwrap();
        }
        let remaining: Vec<u64> = fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .filter_map(|e| offset_of(&e.path()))
            .collect();
        assert_eq!(remaining.len(), KEEP_SNAPSHOTS);
        assert!(remaining.contains(&40));
        assert!(remaining.contains(&30));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_dir_is_none() {
        let dir = temp_dir("none");
        assert!(load_latest(&dir).unwrap().is_none());
        fs::remove_dir_all(&dir).unwrap();
    }
}
