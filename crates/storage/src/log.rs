//! The append-only commitlog.
//!
//! On-disk layout: an 8-byte magic header (`RAINLOG1`) followed by
//! records, each framed as
//!
//! ```text
//! [u32 payload_len][u32 crc32(payload)][payload bytes]
//! ```
//!
//! little-endian. Appends buffer in memory; [`Commitlog::commit`] writes
//! the whole batch and fsyncs once — the fsync-on-commit batching that
//! lets one durable write cover a burst of mutations. A record is durable
//! iff `commit` returned after it was appended.
//!
//! Opening scans the file once: the log is valid up to the first short
//! read, implausible length, or checksum mismatch, and everything after
//! that point is a torn write from a crash mid-`commit` — it is truncated
//! away, and new appends continue from the last valid record, exactly as
//! if the log had ended there.

use crate::{crc32, StorageError};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 8] = b"RAINLOG1";
/// Bytes before the first record (the magic header).
pub const LOG_HEADER_LEN: u64 = 8;
/// Upper bound on one record's payload; anything larger in a length
/// prefix is treated as corruption. Generous: a full 200k-row snapshot of
/// the DBLP workload is well under this.
const MAX_RECORD: u32 = 1 << 30;

/// What [`Commitlog::open`] found on disk.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpenStats {
    /// Valid records already in the log.
    pub records: u64,
    /// Bytes of torn tail discarded (0 on a clean shutdown).
    pub truncated_bytes: u64,
}

/// An append-only, checksummed, fsync-on-commit record log.
#[derive(Debug)]
pub struct Commitlog {
    file: File,
    path: PathBuf,
    /// Offset one past the last durable (committed) record.
    durable_end: u64,
    /// Pending appends, flushed as one batch by [`Commitlog::commit`].
    pending: Vec<u8>,
    records: u64,
    pending_records: u64,
    open_stats: OpenStats,
}

impl Commitlog {
    /// Open (or create) the log at `path`, scanning for the valid prefix
    /// and truncating any torn tail.
    pub fn open(path: &Path) -> Result<Commitlog, StorageError> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let file_len = file.metadata()?.len();
        if file_len < LOG_HEADER_LEN {
            // Fresh (or hopelessly short) log: write the header.
            file.set_len(0)?;
            file.seek(SeekFrom::Start(0))?;
            file.write_all(MAGIC)?;
            file.sync_all()?;
            return Ok(Commitlog {
                file,
                path: path.to_path_buf(),
                durable_end: LOG_HEADER_LEN,
                pending: Vec::new(),
                records: 0,
                pending_records: 0,
                open_stats: OpenStats::default(),
            });
        }
        let mut magic = [0u8; 8];
        file.seek(SeekFrom::Start(0))?;
        file.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(StorageError::Corrupt(format!(
                "{} is not a rain commitlog (bad magic)",
                path.display()
            )));
        }
        let (valid_end, records) = scan(&mut file, file_len)?;
        let truncated = file_len - valid_end;
        if truncated > 0 {
            file.set_len(valid_end)?;
            file.sync_all()?;
        }
        Ok(Commitlog {
            file,
            path: path.to_path_buf(),
            durable_end: valid_end,
            pending: Vec::new(),
            records,
            pending_records: 0,
            open_stats: OpenStats {
                records,
                truncated_bytes: truncated,
            },
        })
    }

    /// What the opening scan found (valid records, torn bytes discarded).
    pub fn open_stats(&self) -> OpenStats {
        self.open_stats
    }

    /// Buffer one record for the next [`Commitlog::commit`]. Returns the
    /// offset one past this record once it commits.
    pub fn append(&mut self, payload: &[u8]) -> u64 {
        assert!(
            payload.len() as u64 <= MAX_RECORD as u64,
            "record payload exceeds MAX_RECORD"
        );
        self.pending
            .extend_from_slice(&(payload.len() as u32).to_le_bytes());
        self.pending
            .extend_from_slice(&crc32(payload).to_le_bytes());
        self.pending.extend_from_slice(payload);
        self.pending_records += 1;
        self.durable_end + self.pending.len() as u64
    }

    /// Flush every buffered record in one write and fsync. After this
    /// returns, those records survive a crash.
    pub fn commit(&mut self) -> Result<(), StorageError> {
        if self.pending.is_empty() {
            return Ok(());
        }
        self.file.seek(SeekFrom::Start(self.durable_end))?;
        self.file.write_all(&self.pending)?;
        self.file.sync_data()?;
        self.durable_end += self.pending.len() as u64;
        self.records += self.pending_records;
        self.pending.clear();
        self.pending_records = 0;
        Ok(())
    }

    /// Offset one past the last durable record (grows only on commit).
    pub fn durable_end(&self) -> u64 {
        self.durable_end
    }

    /// Durable log size in bytes (header included).
    pub fn bytes(&self) -> u64 {
        self.durable_end
    }

    /// Durable records in the log.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Path of the log file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Replay durable record payloads from `from` (a record boundary —
    /// [`LOG_HEADER_LEN`] or an offset a previous append/replay reported)
    /// to the durable end. The sink receives each payload with the offset
    /// one past its frame.
    pub fn replay(
        &mut self,
        from: u64,
        mut sink: impl FnMut(u64, &[u8]) -> Result<(), StorageError>,
    ) -> Result<u64, StorageError> {
        let mut pos = from.clamp(LOG_HEADER_LEN, self.durable_end);
        let mut replayed = 0u64;
        self.file.seek(SeekFrom::Start(pos))?;
        let mut head = [0u8; 8];
        let mut payload = Vec::new();
        while pos + 8 <= self.durable_end {
            self.file.read_exact(&mut head)?;
            let len = u32::from_le_bytes(head[0..4].try_into().unwrap());
            let crc = u32::from_le_bytes(head[4..8].try_into().unwrap());
            if len > MAX_RECORD || pos + 8 + len as u64 > self.durable_end {
                return Err(StorageError::Corrupt(format!(
                    "replay hit an invalid frame inside the valid prefix at {pos}"
                )));
            }
            payload.resize(len as usize, 0);
            self.file.read_exact(&mut payload)?;
            if crc32(&payload) != crc {
                return Err(StorageError::Corrupt(format!(
                    "replay hit a checksum mismatch inside the valid prefix at {pos}"
                )));
            }
            pos += 8 + len as u64;
            sink(pos, &payload)?;
            replayed += 1;
        }
        Ok(replayed)
    }
}

/// Scan from the header to the end, returning (valid_end, record_count).
/// Stops — without error — at the first frame that is short, implausibly
/// long, or fails its checksum: that is the torn tail.
fn scan(file: &mut File, file_len: u64) -> Result<(u64, u64), StorageError> {
    let mut pos = LOG_HEADER_LEN;
    let mut records = 0u64;
    let mut head = [0u8; 8];
    let mut payload = Vec::new();
    file.seek(SeekFrom::Start(pos))?;
    loop {
        if pos + 8 > file_len {
            break;
        }
        file.read_exact(&mut head)?;
        let len = u32::from_le_bytes(head[0..4].try_into().unwrap());
        let crc = u32::from_le_bytes(head[4..8].try_into().unwrap());
        if len > MAX_RECORD || pos + 8 + len as u64 > file_len {
            break;
        }
        payload.resize(len as usize, 0);
        file.read_exact(&mut payload)?;
        if crc32(&payload) != crc {
            break;
        }
        pos += 8 + len as u64;
        records += 1;
    }
    Ok((pos, records))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_path(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "rain-log-test-{}-{tag}-{n}.bin",
            std::process::id()
        ))
    }

    #[test]
    fn append_commit_reopen_replay() {
        let path = temp_path("basic");
        {
            let mut log = Commitlog::open(&path).unwrap();
            log.append(b"one");
            log.append(b"two");
            log.commit().unwrap();
            log.append(b"three");
            log.commit().unwrap();
            assert_eq!(log.records(), 3);
        }
        let mut log = Commitlog::open(&path).unwrap();
        assert_eq!(log.open_stats().records, 3);
        assert_eq!(log.open_stats().truncated_bytes, 0);
        let mut seen = Vec::new();
        log.replay(LOG_HEADER_LEN, |_, p| {
            seen.push(p.to_vec());
            Ok(())
        })
        .unwrap();
        assert_eq!(
            seen,
            vec![b"one".to_vec(), b"two".to_vec(), b"three".to_vec()]
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn uncommitted_appends_are_not_durable() {
        let path = temp_path("uncommitted");
        {
            let mut log = Commitlog::open(&path).unwrap();
            log.append(b"kept");
            log.commit().unwrap();
            log.append(b"lost");
            // dropped without commit
        }
        let log = Commitlog::open(&path).unwrap();
        assert_eq!(log.records(), 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_and_appendable() {
        let path = temp_path("torn");
        {
            let mut log = Commitlog::open(&path).unwrap();
            log.append(b"alpha");
            log.append(b"beta");
            log.commit().unwrap();
        }
        // Tear the last record: chop two bytes off the file.
        let full = std::fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(full - 2).unwrap();
        drop(f);
        let mut log = Commitlog::open(&path).unwrap();
        assert_eq!(log.open_stats().records, 1);
        assert!(log.open_stats().truncated_bytes > 0);
        // The log keeps working from the last valid record.
        log.append(b"gamma");
        log.commit().unwrap();
        drop(log);
        let mut log = Commitlog::open(&path).unwrap();
        let mut seen = Vec::new();
        log.replay(LOG_HEADER_LEN, |_, p| {
            seen.push(p.to_vec());
            Ok(())
        })
        .unwrap();
        assert_eq!(seen, vec![b"alpha".to_vec(), b"gamma".to_vec()]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bad_magic_is_rejected() {
        let path = temp_path("magic");
        std::fs::write(&path, b"NOTALOG!extra").unwrap();
        assert!(matches!(
            Commitlog::open(&path),
            Err(StorageError::Corrupt(_))
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_payloads_round_trip() {
        let path = temp_path("empty");
        let mut log = Commitlog::open(&path).unwrap();
        log.append(b"");
        log.append(b"x");
        log.commit().unwrap();
        drop(log);
        let mut log = Commitlog::open(&path).unwrap();
        let mut lens = Vec::new();
        log.replay(LOG_HEADER_LEN, |_, p| {
            lens.push(p.len());
            Ok(())
        })
        .unwrap();
        assert_eq!(lens, vec![0, 1]);
        std::fs::remove_file(&path).unwrap();
    }
}
