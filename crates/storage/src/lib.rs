//! Durability for the serving layer: commitlog + snapshots + recovery.
//!
//! Everything the server holds — tables, training sets, models — lives in
//! RAM; this crate is the write path that lets it survive a restart. The
//! design is the classic commitlog/snapshot pairing (the shape of
//! SpacetimeDB's `commitlog` + `snapshot` crates):
//!
//! - **[`Commitlog`]** — an append-only log of catalog mutations
//!   ([`Record`]s: create/replace table, append rows, train upload, model
//!   parameters). Records are length-prefixed and CRC32-checksummed;
//!   appends buffer in memory and [`Commitlog::commit`] flushes and
//!   fsyncs once per batch, so one durable write can cover many records.
//! - **[`snapshot`]** — periodic full-state snapshots
//!   ([`SnapshotState`]: tables with versions and null bitmaps, training
//!   set with record ids, model weights), written atomically
//!   (`.tmp` + rename + directory fsync) and named by the log offset they
//!   cover, so the log tail after a snapshot is short.
//! - **[`SessionStore`]** — one directory per session pairing the two:
//!   appends go to the log, a snapshot is cut automatically once enough
//!   log grew behind it, and [`SessionStore::recover`] replays
//!   newest-valid-snapshot + log tail into a [`RecoveredState`].
//!
//! Recovery is **bit-identical**: floats round-trip through
//! [`f64::to_bits`], null bitmaps and dataset record ids are persisted
//! verbatim, and table versions replay through the same
//! [`Database`](rain_sql::Database) bump rules that produced them — so a
//! prepared query against the recovered catalog returns the same rows and
//! provenance polynomials as before the crash. Torn writes are expected:
//! replay stops cleanly at the first short or corrupt record and truncates
//! the log there, exactly like a log that had simply ended earlier.
//!
//! Like the rest of the workspace, this crate is std-only.

pub mod codec;
pub mod log;
pub mod record;
pub mod snapshot;
pub mod store;

pub use codec::{Dec, Enc};
pub use log::{Commitlog, LOG_HEADER_LEN};
pub use record::Record;
pub use snapshot::SnapshotState;
pub use store::{RecoveredState, RecoveryStats, SessionStore, SnapshotPolicy};

/// Errors from the durability layer.
#[derive(Debug)]
pub enum StorageError {
    /// Filesystem failure (open, write, fsync, rename, ...).
    Io(std::io::Error),
    /// Persisted bytes that cannot be decoded. Recovery treats corruption
    /// *at the log tail* as a torn write and stops cleanly; corruption in
    /// a snapshot body falls back to the previous snapshot. This variant
    /// surfaces only where no fallback exists (e.g. a record that passed
    /// its checksum but carries an unknown tag).
    Corrupt(String),
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "storage io error: {e}"),
            StorageError::Corrupt(msg) => write!(f, "corrupt storage: {msg}"),
        }
    }
}

impl std::error::Error for StorageError {}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e)
    }
}

/// CRC32 (IEEE reflected polynomial, the zlib/`crc32fast` flavor) over a
/// byte slice. Table generated at compile time; good enough to catch torn
/// writes and bit rot, which is all the log format asks of it.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            table[i] = c;
            i += 1;
        }
        table
    };
    let mut crc = !0u32;
    for &b in bytes {
        crc = TABLE[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"a"), crc32(b"b"));
    }
}
