//! Log record payloads: one catalog mutation each.
//!
//! A [`Record`] is the unit the [`Commitlog`](crate::Commitlog) appends.
//! Replaying the full sequence against an empty session reproduces the
//! session exactly — table versions included, because replay applies the
//! same [`Database`](rain_sql::Database) bump rules that produced them
//! (register bumps `gen`, append bumps `delta`).

use crate::codec::{self, Dec, Enc};
use crate::StorageError;
use rain_model::Dataset;
use rain_sql::table::Table;
use rain_sql::Value;

/// One durable catalog mutation.
#[derive(Debug)]
pub enum Record {
    /// Session creation: the verbatim JSON body the session was created
    /// with (model spec, engine/threads, sampling knobs). Recovery
    /// re-parses it through the same factory the wire handler uses, so a
    /// deterministic model spec reproduces the same initial weights.
    SessionMeta {
        /// Verbatim creation-request JSON.
        spec: String,
    },
    /// Create or replace a table under a name (bumps `gen`).
    RegisterTable {
        /// Catalog name.
        name: String,
        /// Full table contents.
        table: Table,
    },
    /// Append rows to an existing table (bumps `delta`).
    AppendRows {
        /// Catalog name.
        name: String,
        /// Row values, one `Vec<Value>` per row.
        rows: Vec<Vec<Value>>,
        /// Row-aligned feature vectors, when the table carries features.
        features: Option<Vec<Vec<f64>>>,
    },
    /// Create a secondary index on an existing table's column. Only the
    /// definition is durable; the index data is rebuilt from the table on
    /// replay (and on every later mutation of the table).
    CreateIndex {
        /// Catalog name of the table.
        name: String,
        /// Column the index covers.
        column: String,
        /// [`rain_sql::IndexKind`] wire code
        /// ([`rain_sql::IndexKind::code`]).
        kind: u8,
    },
    /// Replace the training set.
    TrainSet {
        /// The full training set, record ids included.
        data: Dataset,
    },
    /// Replace the model's flat parameter vector (exact bit patterns).
    ModelParams {
        /// Flat parameters, as [`rain_model::Classifier::params`] returns.
        params: Vec<f64>,
    },
}

const TAG_SESSION_META: u8 = 1;
const TAG_REGISTER_TABLE: u8 = 2;
const TAG_APPEND_ROWS: u8 = 3;
const TAG_TRAIN_SET: u8 = 4;
const TAG_MODEL_PARAMS: u8 = 5;
const TAG_CREATE_INDEX: u8 = 6;

impl Record {
    /// Encode to a standalone payload (the commitlog adds framing).
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        match self {
            Record::SessionMeta { spec } => {
                e.u8(TAG_SESSION_META);
                e.str(spec);
            }
            Record::RegisterTable { name, table } => {
                e.u8(TAG_REGISTER_TABLE);
                e.str(name);
                codec::put_table(&mut e, table);
            }
            Record::AppendRows {
                name,
                rows,
                features,
            } => {
                e.u8(TAG_APPEND_ROWS);
                e.str(name);
                e.u64(rows.len() as u64);
                for row in rows {
                    e.u64(row.len() as u64);
                    for v in row {
                        codec::put_value(&mut e, v);
                    }
                }
                match features {
                    Some(feats) => {
                        e.u8(1);
                        e.u64(feats.len() as u64);
                        for f in feats {
                            e.u64(f.len() as u64);
                            for &x in f {
                                e.f64(x);
                            }
                        }
                    }
                    None => e.u8(0),
                }
            }
            Record::CreateIndex { name, column, kind } => {
                e.u8(TAG_CREATE_INDEX);
                e.str(name);
                e.str(column);
                e.u8(*kind);
            }
            Record::TrainSet { data } => {
                e.u8(TAG_TRAIN_SET);
                codec::put_dataset(&mut e, data);
            }
            Record::ModelParams { params } => {
                e.u8(TAG_MODEL_PARAMS);
                e.u64(params.len() as u64);
                for &p in params {
                    e.f64(p);
                }
            }
        }
        e.into_bytes()
    }

    /// Decode a payload produced by [`Record::encode`]. The payload has
    /// already passed the log's checksum, so failure here means an
    /// unknown tag or malformed body — real corruption, not a torn write.
    pub fn decode(payload: &[u8]) -> Result<Record, StorageError> {
        let mut d = Dec::new(payload);
        let rec = match d.u8()? {
            TAG_SESSION_META => Record::SessionMeta { spec: d.str()? },
            TAG_REGISTER_TABLE => Record::RegisterTable {
                name: d.str()?,
                table: codec::get_table(&mut d)?,
            },
            TAG_APPEND_ROWS => {
                let name = d.str()?;
                let n_rows = d.len(8)?;
                let mut rows = Vec::with_capacity(n_rows);
                for _ in 0..n_rows {
                    let n = d.len(1)?;
                    let mut row = Vec::with_capacity(n);
                    for _ in 0..n {
                        row.push(codec::get_value(&mut d)?);
                    }
                    rows.push(row);
                }
                let features = match d.u8()? {
                    0 => None,
                    1 => {
                        let n_feat = d.len(8)?;
                        let mut feats = Vec::with_capacity(n_feat);
                        for _ in 0..n_feat {
                            let w = d.len(8)?;
                            let mut f = Vec::with_capacity(w);
                            for _ in 0..w {
                                f.push(d.f64()?);
                            }
                            feats.push(f);
                        }
                        Some(feats)
                    }
                    t => {
                        return Err(StorageError::Corrupt(format!(
                            "bad append features tag {t}"
                        )))
                    }
                };
                Record::AppendRows {
                    name,
                    rows,
                    features,
                }
            }
            TAG_CREATE_INDEX => Record::CreateIndex {
                name: d.str()?,
                column: d.str()?,
                kind: d.u8()?,
            },
            TAG_TRAIN_SET => Record::TrainSet {
                data: codec::get_dataset(&mut d)?,
            },
            TAG_MODEL_PARAMS => {
                let n = d.len(8)?;
                let mut params = Vec::with_capacity(n);
                for _ in 0..n {
                    params.push(d.f64()?);
                }
                Record::ModelParams { params }
            }
            t => return Err(StorageError::Corrupt(format!("unknown record tag {t}"))),
        };
        if !d.is_done() {
            return Err(StorageError::Corrupt(
                "trailing bytes after record body".into(),
            ));
        }
        Ok(rec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rain_linalg::Matrix;
    use rain_sql::table::{ColType, Column, Schema};

    #[test]
    fn records_round_trip() {
        let table = Table::from_columns(
            Schema::new(&[("x", ColType::Int)]),
            vec![Column::Int(vec![1, 2, 3])],
        );
        let recs = vec![
            Record::SessionMeta {
                spec: "{\"session\":\"s\"}".into(),
            },
            Record::RegisterTable {
                name: "pairs".into(),
                table,
            },
            Record::AppendRows {
                name: "pairs".into(),
                rows: vec![vec![Value::Int(4)], vec![Value::Null]],
                features: None,
            },
            Record::AppendRows {
                name: "feat".into(),
                rows: vec![vec![Value::Float(0.5)]],
                features: Some(vec![vec![1.0, -0.0]]),
            },
            Record::CreateIndex {
                name: "pairs".into(),
                column: "x".into(),
                kind: 1,
            },
            Record::TrainSet {
                data: Dataset::with_ids(
                    Matrix::from_vec(2, 1, vec![1.0, 2.0]),
                    vec![0, 1],
                    vec![5, 9],
                    2,
                ),
            },
            Record::ModelParams {
                params: vec![0.25, -1.5, f64::MIN_POSITIVE],
            },
        ];
        for rec in recs {
            let bytes = rec.encode();
            let back = Record::decode(&bytes).unwrap();
            // Compare through re-encoding: byte equality is exactly the
            // bit-identity the recovery path promises.
            assert_eq!(back.encode(), bytes);
        }
    }

    #[test]
    fn unknown_tag_and_trailing_bytes_are_corrupt() {
        assert!(Record::decode(&[0xFF]).is_err());
        assert!(Record::decode(&[]).is_err());
        let mut bytes = Record::SessionMeta { spec: "x".into() }.encode();
        bytes.push(0);
        assert!(Record::decode(&bytes).is_err());
    }
}
