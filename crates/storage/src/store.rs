//! One directory per session: a commitlog plus its snapshots.
//!
//! Layout under the session directory:
//!
//! ```text
//! <dir>/log.bin                  append-only commitlog
//! <dir>/snap-<offset>.bin        snapshots, named by covered log offset
//! ```
//!
//! [`SessionStore::recover`] is the boot path: newest valid snapshot (if
//! any) + replay of the log tail after its offset, producing a
//! [`RecoveredState`] whose catalog versions, null bitmaps, float bits,
//! and dataset record ids are identical to the pre-crash state.
//! [`SessionStore::maybe_snapshot`] is the steady-state path: it cuts a
//! snapshot only once enough log (bytes or records) has accumulated
//! behind the previous one, keeping both the write amplification and the
//! recovery tail bounded.

use crate::log::{Commitlog, LOG_HEADER_LEN};
use crate::record::Record;
use crate::snapshot::{self, SnapshotState};
use crate::StorageError;
use rain_model::Dataset;
use rain_sql::Database;
use std::path::{Path, PathBuf};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// When to cut a snapshot: once either threshold of log growth since the
/// last snapshot is crossed.
#[derive(Debug, Clone, Copy)]
pub struct SnapshotPolicy {
    /// Log bytes behind the latest snapshot that trigger a new one.
    pub every_bytes: u64,
    /// Log records behind the latest snapshot that trigger a new one.
    pub every_records: u64,
}

impl Default for SnapshotPolicy {
    fn default() -> Self {
        SnapshotPolicy {
            every_bytes: 8 << 20,
            every_records: 256,
        }
    }
}

/// What recovery did, for `/stats`, `/metrics`, and logs.
#[derive(Debug, Clone, Copy, Default)]
pub struct RecoveryStats {
    /// Log offset of the snapshot used, if one validated.
    pub snapshot_offset: Option<u64>,
    /// Log records replayed after the snapshot.
    pub replayed_records: u64,
    /// Torn-tail bytes discarded when the log was opened.
    pub truncated_bytes: u64,
    /// Durable log size after open (bytes).
    pub log_bytes: u64,
    /// Durable records in the log after open.
    pub log_records: u64,
    /// Wall-clock seconds spent in snapshot load + replay.
    pub seconds: f64,
}

/// Session state reassembled from disk: the catalog plus the pieces the
/// caller turns back into a live session (parse `spec`, build the model,
/// apply `params`).
#[derive(Debug)]
pub struct RecoveredState {
    /// Verbatim session-creation JSON, if a meta record survived.
    pub spec: Option<String>,
    /// Flat model parameters, if a snapshot or params record survived.
    pub params: Option<Vec<f64>>,
    /// Training set, if one was uploaded.
    pub train: Option<Dataset>,
    /// The catalog, versions and all.
    pub db: Database,
    /// What recovery did.
    pub stats: RecoveryStats,
}

impl RecoveredState {
    /// Empty state (what a session looks like before any record).
    pub fn empty() -> Self {
        RecoveredState {
            spec: None,
            params: None,
            train: None,
            db: Database::new(),
            stats: RecoveryStats::default(),
        }
    }

    /// Apply one log record. Replay applies the same catalog bump rules
    /// that produced the record, so versions come out identical; tests
    /// use this directly as the reference replay.
    pub fn apply(&mut self, rec: Record) -> Result<(), StorageError> {
        match rec {
            Record::SessionMeta { spec } => self.spec = Some(spec),
            Record::RegisterTable { name, table } => {
                self.db.register(&name, table);
            }
            Record::AppendRows {
                name,
                rows,
                features,
            } => {
                self.db.append_to(&name, rows, features).map_err(|e| {
                    StorageError::Corrupt(format!("append record does not apply: {e}"))
                })?;
            }
            Record::CreateIndex { name, column, kind } => {
                let kind = rain_sql::IndexKind::from_code(kind).ok_or_else(|| {
                    StorageError::Corrupt(format!("unknown index kind code {kind}"))
                })?;
                self.db.create_index(&name, &column, kind).map_err(|e| {
                    StorageError::Corrupt(format!("index record does not apply: {e}"))
                })?;
            }
            Record::TrainSet { data } => self.train = Some(data),
            Record::ModelParams { params } => self.params = Some(params),
        }
        Ok(())
    }
}

/// Commitlog + snapshots for one session.
#[derive(Debug)]
pub struct SessionStore {
    dir: PathBuf,
    log: Commitlog,
    policy: SnapshotPolicy,
    /// Log offset covered by the latest snapshot (header offset = none).
    snapshot_offset: u64,
    records_since_snapshot: u64,
    snapshots_taken: u64,
    last_snapshot_unix_ms: u64,
}

impl SessionStore {
    /// Open (creating the directory and log if needed) with the default
    /// snapshot policy.
    pub fn open(dir: &Path) -> Result<SessionStore, StorageError> {
        SessionStore::open_with(dir, SnapshotPolicy::default())
    }

    /// Open with an explicit snapshot policy.
    pub fn open_with(dir: &Path, policy: SnapshotPolicy) -> Result<SessionStore, StorageError> {
        std::fs::create_dir_all(dir)?;
        let log = Commitlog::open(&dir.join("log.bin"))?;
        Ok(SessionStore {
            dir: dir.to_path_buf(),
            log,
            policy,
            snapshot_offset: LOG_HEADER_LEN,
            records_since_snapshot: 0,
            snapshots_taken: 0,
            last_snapshot_unix_ms: 0,
        })
    }

    /// The session directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Buffer a record; durable after the next [`SessionStore::commit`].
    pub fn append(&mut self, rec: &Record) {
        self.log.append(&rec.encode());
        self.records_since_snapshot += 1;
    }

    /// Flush buffered records with one write + fsync.
    pub fn commit(&mut self) -> Result<(), StorageError> {
        self.log.commit()
    }

    /// Append one record and commit immediately (the common wire-handler
    /// case: one mutation per request).
    pub fn append_commit(&mut self, rec: &Record) -> Result<(), StorageError> {
        self.append(rec);
        self.commit()
    }

    /// Reassemble session state: newest valid snapshot plus the log tail.
    pub fn recover(&mut self) -> Result<RecoveredState, StorageError> {
        let t0 = Instant::now();
        let open = self.log.open_stats();
        let mut state = RecoveredState::empty();
        let mut from = LOG_HEADER_LEN;
        if let Some((offset, snap)) = snapshot::load_latest(&self.dir)? {
            state.spec = Some(snap.spec);
            state.params = Some(snap.params);
            // An all-empty training set stands for "never uploaded".
            if !snap.train.is_empty() || snap.train.dim() > 0 {
                state.train = Some(snap.train);
            }
            for (name, version, table) in snap.tables {
                state.db.register_with_version(&name, table, version);
            }
            // Index *definitions* ride in the snapshot; their data is
            // rebuilt here from the just-registered tables.
            for (table, column, kind) in snap.indexes {
                let kind = rain_sql::IndexKind::from_code(kind).ok_or_else(|| {
                    StorageError::Corrupt(format!("unknown index kind code {kind}"))
                })?;
                state.db.create_index(&table, &column, kind).map_err(|e| {
                    StorageError::Corrupt(format!("snapshot index does not apply: {e}"))
                })?;
            }
            state.stats.snapshot_offset = Some(offset);
            from = offset;
            self.snapshot_offset = offset;
            self.snapshots_taken = 1;
        }
        let mut replay_err = None;
        let replayed = self.log.replay(from, |_, payload| {
            match Record::decode(payload) {
                Ok(rec) => state.apply(rec),
                Err(e) => {
                    // A record that passed its checksum but fails to
                    // decode is real corruption, not a torn write.
                    replay_err = Some(e);
                    Err(StorageError::Corrupt("replay aborted".into()))
                }
            }
        });
        match (replayed, replay_err) {
            (Ok(n), None) => state.stats.replayed_records = n,
            (_, Some(e)) => return Err(e),
            (Err(e), None) => return Err(e),
        }
        state.stats.truncated_bytes = open.truncated_bytes;
        state.stats.log_bytes = self.log.bytes();
        state.stats.log_records = self.log.records();
        state.stats.seconds = t0.elapsed().as_secs_f64();
        Ok(state)
    }

    /// Cut a snapshot now, covering everything committed so far.
    pub fn snapshot(&mut self, state: &SnapshotState) -> Result<(), StorageError> {
        let offset = self.log.durable_end();
        snapshot::write_snapshot(&self.dir, offset, state)?;
        self.snapshot_offset = offset;
        self.records_since_snapshot = 0;
        self.snapshots_taken += 1;
        self.last_snapshot_unix_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        Ok(())
    }

    /// Cut a snapshot if enough log accumulated behind the previous one
    /// (per the open policy). `build` runs only when a snapshot is due —
    /// assembling [`SnapshotState`] clones the full catalog, so the
    /// common no-op call stays cheap. Returns whether a snapshot was cut.
    pub fn maybe_snapshot(
        &mut self,
        build: impl FnOnce() -> SnapshotState,
    ) -> Result<bool, StorageError> {
        let lag_bytes = self.log.durable_end().saturating_sub(self.snapshot_offset);
        if lag_bytes < self.policy.every_bytes
            && self.records_since_snapshot < self.policy.every_records
        {
            return Ok(false);
        }
        self.snapshot(&build())?;
        Ok(true)
    }

    /// Durable log size in bytes.
    pub fn log_bytes(&self) -> u64 {
        self.log.bytes()
    }

    /// Durable records in the log.
    pub fn log_records(&self) -> u64 {
        self.log.records()
    }

    /// Snapshots cut (including one counted for the snapshot recovery
    /// loaded, if any).
    pub fn snapshots_taken(&self) -> u64 {
        self.snapshots_taken
    }

    /// Unix milliseconds of the last snapshot cut by this process
    /// (0 = none yet).
    pub fn last_snapshot_unix_ms(&self) -> u64 {
        self.last_snapshot_unix_ms
    }

    /// Log bytes accumulated behind the latest snapshot.
    pub fn snapshot_lag_bytes(&self) -> u64 {
        self.log.durable_end().saturating_sub(self.snapshot_offset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rain_linalg::Matrix;
    use rain_sql::table::{ColType, Column, Schema, Table};
    use rain_sql::{TableVersion, Value};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("rain-store-test-{}-{tag}-{n}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn ints(vals: Vec<i64>) -> Table {
        Table::from_columns(Schema::new(&[("x", ColType::Int)]), vec![Column::Int(vals)])
    }

    #[test]
    fn log_only_recovery_reproduces_versions() {
        let dir = temp_dir("logonly");
        {
            let mut store = SessionStore::open(&dir).unwrap();
            store.append(&Record::SessionMeta { spec: "{}".into() });
            store.append(&Record::RegisterTable {
                name: "t".into(),
                table: ints(vec![1, 2]),
            });
            store.append(&Record::AppendRows {
                name: "t".into(),
                rows: vec![vec![Value::Int(3)]],
                features: None,
            });
            store.append(&Record::RegisterTable {
                name: "t".into(),
                table: ints(vec![9]),
            });
            store.append(&Record::AppendRows {
                name: "t".into(),
                rows: vec![vec![Value::Int(10)], vec![Value::Null]],
                features: None,
            });
            store.commit().unwrap();
        }
        let mut store = SessionStore::open(&dir).unwrap();
        let state = store.recover().unwrap();
        assert_eq!(state.spec.as_deref(), Some("{}"));
        let id = state.db.resolve("t").unwrap();
        assert_eq!(
            state.db.table_version(id),
            TableVersion { gen: 1, delta: 1 },
            "replay reproduces the replace + append history"
        );
        let t = state.db.table_by_id(id);
        assert_eq!(t.n_rows(), 3);
        assert!(t.is_null(2, 0));
        assert_eq!(state.stats.replayed_records, 5);
        assert!(state.stats.snapshot_offset.is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_plus_tail_recovery() {
        let dir = temp_dir("snaptail");
        {
            let mut store = SessionStore::open(&dir).unwrap();
            store.append(&Record::SessionMeta {
                spec: "{\"m\":1}".into(),
            });
            store.append(&Record::RegisterTable {
                name: "t".into(),
                table: ints(vec![1]),
            });
            store.commit().unwrap();
            // Cut a snapshot of the state so far, then keep logging.
            let mut pre = RecoveredState::empty();
            pre.apply(Record::SessionMeta {
                spec: "{\"m\":1}".into(),
            })
            .unwrap();
            pre.apply(Record::RegisterTable {
                name: "t".into(),
                table: ints(vec![1]),
            })
            .unwrap();
            let snap = SnapshotState {
                spec: "{\"m\":1}".into(),
                params: vec![0.5],
                train: Dataset::with_ids(Matrix::zeros(0, 0), vec![], vec![], 2),
                tables: pre
                    .db
                    .entries()
                    .map(|e| (e.name.clone(), e.version, e.table.clone()))
                    .collect(),
                indexes: vec![("t".into(), "x".into(), 0)],
            };
            store.snapshot(&snap).unwrap();
            store
                .append_commit(&Record::AppendRows {
                    name: "t".into(),
                    rows: vec![vec![Value::Int(2)]],
                    features: None,
                })
                .unwrap();
        }
        let mut store = SessionStore::open(&dir).unwrap();
        let state = store.recover().unwrap();
        assert!(state.stats.snapshot_offset.is_some());
        assert_eq!(state.stats.replayed_records, 1, "only the tail replays");
        assert_eq!(state.params.as_deref(), Some(&[0.5][..]));
        let id = state.db.resolve("t").unwrap();
        assert_eq!(state.db.table_by_id(id).n_rows(), 2);
        assert_eq!(
            state.db.table_version(id),
            TableVersion { gen: 0, delta: 1 }
        );
        let ix = state
            .db
            .index_on(id, 0, rain_sql::IndexKind::Hash)
            .expect("snapshot index definition recovered");
        assert_eq!(ix.len(), 2, "index rebuilt over the replayed tail too");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn index_records_replay_and_rebuild() {
        let dir = temp_dir("index");
        {
            let mut store = SessionStore::open(&dir).unwrap();
            store.append(&Record::RegisterTable {
                name: "t".into(),
                table: ints(vec![1, 2]),
            });
            store.append(&Record::CreateIndex {
                name: "t".into(),
                column: "x".into(),
                kind: 0,
            });
            store.append(&Record::AppendRows {
                name: "t".into(),
                rows: vec![vec![Value::Int(2)]],
                features: None,
            });
            store.commit().unwrap();
        }
        let mut store = SessionStore::open(&dir).unwrap();
        let state = store.recover().unwrap();
        let id = state.db.resolve("t").unwrap();
        let ix = state
            .db
            .index_on(id, 0, rain_sql::IndexKind::Hash)
            .expect("index recovered from the log");
        assert_eq!(ix.len(), 3, "rebuilt over appended rows too");
        std::fs::remove_dir_all(&dir).unwrap();

        // A kind code from the future is corruption, not a silent skip.
        let mut st = RecoveredState::empty();
        st.apply(Record::RegisterTable {
            name: "t".into(),
            table: ints(vec![1]),
        })
        .unwrap();
        assert!(st
            .apply(Record::CreateIndex {
                name: "t".into(),
                column: "x".into(),
                kind: 9,
            })
            .is_err());
    }

    #[test]
    fn snapshot_policy_triggers_on_records() {
        let dir = temp_dir("policy");
        let mut store = SessionStore::open_with(
            &dir,
            SnapshotPolicy {
                every_bytes: u64::MAX,
                every_records: 3,
            },
        )
        .unwrap();
        let snap = || SnapshotState {
            spec: "{}".into(),
            params: vec![],
            train: Dataset::with_ids(Matrix::zeros(0, 0), vec![], vec![], 2),
            tables: vec![],
            indexes: vec![],
        };
        for i in 0..2 {
            store
                .append_commit(&Record::SessionMeta {
                    spec: format!("{{\"i\":{i}}}"),
                })
                .unwrap();
            assert!(!store.maybe_snapshot(snap).unwrap());
        }
        store
            .append_commit(&Record::SessionMeta { spec: "{}".into() })
            .unwrap();
        assert!(store.maybe_snapshot(snap).unwrap());
        assert_eq!(store.snapshots_taken(), 1);
        assert!(store.last_snapshot_unix_ms() > 0);
        assert_eq!(store.snapshot_lag_bytes(), 0);
        assert!(!store.maybe_snapshot(snap).unwrap(), "counter reset");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
