//! Crash-recovery property tests: torn-write simulation.
//!
//! Each trial builds a random mutation history, makes it durable, then
//! damages the log file the way a crash would — truncation at an
//! arbitrary byte offset, or a flipped byte in the tail — and asserts
//! that recovery stops cleanly at the last fully-valid record with state
//! **bit-identical** to a reference replay of exactly that record
//! prefix. "Bit-identical" is checked by encoding both states through
//! the storage codec and comparing bytes: float bit patterns, null
//! bitmaps, dataset record ids, and `(gen, delta)` catalog versions all
//! participate.

use rain_linalg::{Matrix, RainRng};
use rain_model::Dataset;
use rain_sql::table::{ColType, Column, Schema, Table};
use rain_sql::{IndexKind, Value};
use rain_storage::{
    codec, Enc, Record, RecoveredState, SessionStore, SnapshotState, LOG_HEADER_LEN,
};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

fn temp_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "rain-recovery-test-{}-{tag}-{n}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Canonical byte encoding of everything recovery promises to restore.
/// Two states encoding to the same bytes are bit-identical: specs,
/// params, training sets (float bits + record ids), and every catalog
/// entry's name, `(gen, delta)` version, columns, null bitmaps, and
/// feature matrix.
fn state_bytes(state: &RecoveredState) -> Vec<u8> {
    let mut e = Enc::new();
    match &state.spec {
        Some(s) => {
            e.u8(1);
            e.str(s);
        }
        None => e.u8(0),
    }
    match &state.params {
        Some(p) => {
            e.u8(1);
            e.u64(p.len() as u64);
            for &x in p {
                e.f64(x);
            }
        }
        None => e.u8(0),
    }
    match &state.train {
        Some(d) => {
            e.u8(1);
            codec::put_dataset(&mut e, d);
        }
        None => e.u8(0),
    }
    for ent in state.db.entries() {
        e.str(&ent.name);
        e.u64(ent.version.gen);
        e.u64(ent.version.delta);
        codec::put_table(&mut e, &ent.table);
        // Index definitions participate in the bit-identity claim (their
        // data is a pure function of the table, so defs suffice).
        e.u64(ent.indexes.len() as u64);
        for ix in &ent.indexes {
            e.str(&ix.column);
            e.u8(ix.kind.code());
        }
    }
    e.into_bytes()
}

/// An owned copy of a record (Record is not Clone; the codec round-trip
/// is exact by construction).
fn dup(rec: &Record) -> Record {
    Record::decode(&rec.encode()).unwrap()
}

const COL_NAMES: [&str; 3] = ["a", "b", "c"];

fn random_col_type(rng: &mut RainRng) -> ColType {
    match rng.below(4) {
        0 => ColType::Bool,
        1 => ColType::Int,
        2 => ColType::Float,
        _ => ColType::Str,
    }
}

/// Cell of the given type; floats draw from bit-pattern edge cases so the
/// bit-identity claim is load-bearing, not vacuous.
fn random_value(rng: &mut RainRng, ty: ColType, allow_null: bool) -> Value {
    if allow_null && rng.bernoulli(0.15) {
        return Value::Null;
    }
    match ty {
        ColType::Bool => Value::Bool(rng.bernoulli(0.5)),
        ColType::Int => Value::Int(rng.int_range(-1_000, 1_000)),
        ColType::Float => Value::Float(match rng.below(8) {
            0 => -0.0,
            1 => f64::MIN_POSITIVE,
            2 => -1.5e300,
            _ => rng.uniform_range(-10.0, 10.0),
        }),
        ColType::Str => Value::Str(format!("s{}", rng.below(100))),
    }
}

fn random_table(rng: &mut RainRng) -> (Table, Vec<ColType>) {
    let n_cols = 1 + rng.below(3);
    let n_rows = 1 + rng.below(5);
    let types: Vec<ColType> = (0..n_cols).map(|_| random_col_type(rng)).collect();
    let defs: Vec<(&str, ColType)> = types
        .iter()
        .enumerate()
        .map(|(i, &ty)| (COL_NAMES[i], ty))
        .collect();
    let columns = types
        .iter()
        .map(|&ty| match ty {
            ColType::Bool => Column::Bool((0..n_rows).map(|_| rng.bernoulli(0.5)).collect()),
            ColType::Int => Column::Int((0..n_rows).map(|_| rng.int_range(-50, 50)).collect()),
            ColType::Float => Column::Float(
                (0..n_rows)
                    .map(|_| match rng.below(6) {
                        0 => -0.0,
                        _ => rng.uniform_range(-5.0, 5.0),
                    })
                    .collect(),
            ),
            ColType::Str => {
                Column::Str((0..n_rows).map(|_| format!("r{}", rng.below(30))).collect())
            }
        })
        .collect();
    (Table::from_columns(Schema::new(&defs), columns), types)
}

fn random_dataset(rng: &mut RainRng) -> Dataset {
    let n = 1 + rng.below(5);
    let dim = 2;
    let x = Matrix::from_vec(n, dim, (0..n * dim).map(|_| rng.uniform()).collect());
    let labels: Vec<usize> = (0..n).map(|_| rng.below(2)).collect();
    let ids: Vec<usize> = (0..n).map(|i| i * 3 + 7).collect();
    Dataset::with_ids(x, labels, ids, 2)
}

/// One random catalog mutation, kept valid against the tables registered
/// so far (`tables` mirrors name → schema).
fn random_record(rng: &mut RainRng, tables: &mut Vec<(String, Vec<ColType>)>) -> Record {
    let roll = rng.below(10);
    if tables.is_empty() || roll < 3 {
        let name = format!("t{}", rng.below(4));
        let (table, types) = random_table(rng);
        match tables.iter_mut().find(|(n, _)| *n == name) {
            Some(slot) => slot.1 = types,
            None => tables.push((name.clone(), types)),
        }
        Record::RegisterTable { name, table }
    } else if roll < 6 {
        let (name, types) = tables[rng.below(tables.len())].clone();
        let n = 1 + rng.below(4);
        let rows = (0..n)
            .map(|_| {
                types
                    .iter()
                    .map(|&ty| random_value(rng, ty, true))
                    .collect()
            })
            .collect();
        Record::AppendRows {
            name,
            rows,
            features: None,
        }
    } else if roll < 7 {
        // Valid against the schema at this point in the history; a later
        // replacing register may drop the index again, deterministically.
        let (name, types) = tables[rng.below(tables.len())].clone();
        let col = rng.below(types.len());
        let kind = if types[col] != ColType::Str && rng.bernoulli(0.5) {
            IndexKind::Sorted
        } else {
            IndexKind::Hash
        };
        Record::CreateIndex {
            name,
            column: COL_NAMES[col].to_string(),
            kind: kind.code(),
        }
    } else if roll < 8 {
        Record::TrainSet {
            data: random_dataset(rng),
        }
    } else if roll < 9 {
        Record::ModelParams {
            params: rng.normal_vec(3, 1.0),
        }
    } else {
        Record::SessionMeta {
            spec: format!("{{\"seed\":{}}}", rng.below(1_000)),
        }
    }
}

/// Write `records` durably and return the log-offset one past each frame
/// (frame i's bytes are `[ends[i-1], ends[i])`, with `ends[-1]` standing
/// for the 8-byte header).
fn write_history(dir: &Path, records: &[Record]) -> Vec<u64> {
    let mut store = SessionStore::open(dir).unwrap();
    let mut ends = Vec::with_capacity(records.len());
    let mut off = LOG_HEADER_LEN;
    for rec in records {
        off += 8 + rec.encode().len() as u64;
        ends.push(off);
        store.append(rec);
    }
    store.commit().unwrap();
    ends
}

/// Reference replay: the first `n` records applied to an empty state.
fn reference(records: &[Record], n: usize) -> RecoveredState {
    let mut state = RecoveredState::empty();
    for rec in &records[..n] {
        state.apply(dup(rec)).unwrap();
    }
    state
}

#[test]
fn truncation_at_any_offset_recovers_the_exact_durable_prefix() {
    for seed in 0..6u64 {
        let mut rng = RainRng::seed_from_u64(0xB0A7 + seed);
        let mut tables = Vec::new();
        let records: Vec<Record> = (0..25)
            .map(|_| random_record(&mut rng, &mut tables))
            .collect();
        let dir = temp_dir("trunc");
        let ends = write_history(&dir, &records);
        let log_path = dir.join("log.bin");
        let full = std::fs::metadata(&log_path).unwrap().len();
        assert_eq!(full, *ends.last().unwrap());

        // Tear the file at a uniformly random byte offset (header kept).
        let cut = LOG_HEADER_LEN + rng.below((full - LOG_HEADER_LEN + 1) as usize) as u64;
        let f = std::fs::OpenOptions::new()
            .write(true)
            .open(&log_path)
            .unwrap();
        f.set_len(cut).unwrap();
        drop(f);

        let survivors = ends.iter().filter(|&&e| e <= cut).count();
        let mut store = SessionStore::open(&dir).unwrap();
        let recovered = store.recover().unwrap();
        assert_eq!(
            recovered.stats.replayed_records, survivors as u64,
            "seed {seed}: cut at {cut} of {full} must keep exactly the full frames before it"
        );
        assert!(recovered.stats.snapshot_offset.is_none());
        assert_eq!(
            state_bytes(&recovered),
            state_bytes(&reference(&records, survivors)),
            "seed {seed}: recovered state diverges from reference replay of {survivors} records"
        );
        // The truncated log keeps accepting appends from the cut point.
        let mut tail_tables: Vec<(String, Vec<ColType>)> = Vec::new();
        store
            .append_commit(&random_record(&mut rng, &mut tail_tables))
            .unwrap();
        assert_eq!(store.log_records(), survivors as u64 + 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn corruption_in_the_tail_recovers_the_prefix_before_the_bad_frame() {
    for seed in 0..6u64 {
        let mut rng = RainRng::seed_from_u64(0xC0DE + seed);
        let mut tables = Vec::new();
        let records: Vec<Record> = (0..25)
            .map(|_| random_record(&mut rng, &mut tables))
            .collect();
        let dir = temp_dir("corrupt");
        let ends = write_history(&dir, &records);
        let log_path = dir.join("log.bin");

        // Flip one byte somewhere past the header: the frame containing
        // it fails its checksum (or yields an implausible length), and
        // the scan must stop at the frame boundary before it.
        let mut bytes = std::fs::read(&log_path).unwrap();
        let victim = LOG_HEADER_LEN as usize + rng.below(bytes.len() - LOG_HEADER_LEN as usize);
        bytes[victim] ^= 0x5A;
        std::fs::write(&log_path, &bytes).unwrap();

        let survivors = ends.iter().filter(|&&e| e <= victim as u64).count();
        let mut store = SessionStore::open(&dir).unwrap();
        let recovered = store.recover().unwrap();
        assert_eq!(
            recovered.stats.replayed_records, survivors as u64,
            "seed {seed}: byte {victim} flipped; frames before its frame must survive"
        );
        assert!(recovered.stats.truncated_bytes > 0, "seed {seed}");
        assert_eq!(
            state_bytes(&recovered),
            state_bytes(&reference(&records, survivors)),
            "seed {seed}: recovered state diverges from reference replay of {survivors} records"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn snapshot_plus_torn_tail_recovers_bit_identically() {
    for seed in 0..4u64 {
        let mut rng = RainRng::seed_from_u64(0x57AB + seed);
        let mut tables = Vec::new();
        // A head the snapshot will cover: meta, params, and a train set
        // first so the snapshot has concrete spec/params/train to carry.
        let mut records = vec![
            Record::SessionMeta {
                spec: format!("{{\"session\":{seed}}}"),
            },
            Record::ModelParams {
                params: rng.normal_vec(4, 1.0),
            },
            Record::TrainSet {
                data: random_dataset(&mut rng),
            },
        ];
        for _ in 0..8 {
            records.push(random_record(&mut rng, &mut tables));
        }
        let head_len = records.len();

        let dir = temp_dir("snaptorn");
        let mut store = SessionStore::open(&dir).unwrap();
        let mut ends = Vec::new();
        let mut off = LOG_HEADER_LEN;
        for rec in &records {
            off += 8 + rec.encode().len() as u64;
            ends.push(off);
            store.append(rec);
        }
        store.commit().unwrap();

        // Snapshot the head state, then keep logging a tail.
        let head = reference(&records, head_len);
        let snap = SnapshotState {
            spec: head.spec.clone().unwrap(),
            params: head.params.clone().unwrap(),
            train: head.train.clone().unwrap(),
            tables: head
                .db
                .entries()
                .map(|e| (e.name.clone(), e.version, e.table.clone()))
                .collect(),
            indexes: head
                .db
                .entries()
                .flat_map(|e| {
                    e.indexes
                        .iter()
                        .map(|ix| (e.name.clone(), ix.column.clone(), ix.kind.code()))
                })
                .collect(),
        };
        store.snapshot(&snap).unwrap();
        let snap_offset = store.log_bytes();

        for _ in 0..8 {
            let rec = random_record(&mut rng, &mut tables);
            off += 8 + rec.encode().len() as u64;
            ends.push(off);
            store.append(&rec);
            records.push(rec);
        }
        store.commit().unwrap();
        drop(store);

        // Tear somewhere in the tail (at or after the snapshot offset).
        let log_path = dir.join("log.bin");
        let full = std::fs::metadata(&log_path).unwrap().len();
        let cut = snap_offset + rng.below((full - snap_offset + 1) as usize) as u64;
        let f = std::fs::OpenOptions::new()
            .write(true)
            .open(&log_path)
            .unwrap();
        f.set_len(cut).unwrap();
        drop(f);

        let survivors = ends.iter().filter(|&&e| e <= cut).count();
        let mut store = SessionStore::open(&dir).unwrap();
        let recovered = store.recover().unwrap();
        assert_eq!(
            recovered.stats.snapshot_offset,
            Some(snap_offset),
            "seed {seed}: the snapshot must be found and used"
        );
        assert_eq!(
            recovered.stats.replayed_records,
            (survivors - head_len) as u64,
            "seed {seed}: only the tail after the snapshot replays"
        );
        assert_eq!(
            state_bytes(&recovered),
            state_bytes(&reference(&records, survivors)),
            "seed {seed}: snapshot + tail replay diverges from full reference replay"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// The acceptance differential: a debug-mode query (rows + provenance
/// polynomials over prediction variables) against the recovered catalog
/// matches the pre-crash run exactly — including after a delta append
/// bumped the table's `(gen, delta)` version.
#[test]
fn recovered_catalog_serves_identical_rows_and_provenance() {
    use rain_model::{Classifier, LogisticRegression};
    use rain_sql::{run_query, ExecOptions, TableVersion};

    let table = Table::from_columns(
        Schema::new(&[("id", ColType::Int)]),
        vec![Column::Int(vec![10, 11, 12])],
    )
    .with_features(Matrix::from_rows(&[&[1.0], &[-1.0], &[0.25]]));
    let records = vec![
        Record::RegisterTable {
            name: "users".into(),
            table,
        },
        Record::AppendRows {
            name: "users".into(),
            rows: vec![vec![Value::Int(13)], vec![Value::Int(14)]],
            features: Some(vec![vec![-2.5], vec![0.75]]),
        },
    ];
    let pre = reference(&records, records.len());

    let mut model = LogisticRegression::new(1, 0.0);
    model.set_params(&[10.0, 0.0]);
    let sql = "SELECT id FROM users WHERE predict(*) = 1";
    let before = run_query(&pre.db, &model, sql, ExecOptions::debug()).unwrap();

    let dir = temp_dir("differential");
    write_history(&dir, &records);
    let mut store = SessionStore::open(&dir).unwrap();
    let recovered = store.recover().unwrap();

    assert_eq!(state_bytes(&recovered), state_bytes(&pre));
    let id = recovered.db.resolve("users").unwrap();
    assert_eq!(
        recovered.db.table_version(id),
        TableVersion { gen: 0, delta: 1 },
        "the delta append's version bump must survive recovery"
    );

    let after = run_query(&recovered.db, &model, sql, ExecOptions::debug()).unwrap();
    assert_eq!(before.table.n_rows(), 3, "ids 10, 12, 14 predict positive");
    assert_eq!(
        format!("{:?}", before.table),
        format!("{:?}", after.table),
        "result rows must match the pre-crash run exactly"
    );
    assert_eq!(
        format!("{:?}", before.row_prov),
        format!("{:?}", after.row_prov),
        "provenance polynomials must match the pre-crash run exactly"
    );
    assert_eq!(
        format!("{:?}", before.agg_cells),
        format!("{:?}", after.agg_cells)
    );
    assert_eq!(before.predvars.infos(), after.predvars.infos());
    assert_eq!(before.predvars.preds(), after.predvars.preds());
    std::fs::remove_dir_all(&dir).unwrap();
}
