//! Influence-function engine (paper §4.1, following Koh & Liang).
//!
//! Both TwoStep and Holistic reduce the debugging problem to the same
//! computation: given a differentiable complaint encoding `q(θ)`, estimate
//! for every training record `z` how much removing `z` changes `q`:
//!
//! ```text
//! score(z) = -∇q(θ*)ᵀ · H⁻¹ · ∇ℓ(z, θ*)        (Eq. 4 of the paper)
//! ```
//!
//! Records with large positive scores are those whose removal *decreases*
//! `q` the most — i.e. best addresses the complaint — and are ranked first.
//!
//! Inverting the Hessian is infeasible (`O(d³)`), so [`inverse_hvp`] solves
//! `H s = ∇q` with conjugate gradient, using only Hessian-vector products
//! supplied by the model (closed-form or Pearlmutter R-op). A damping term
//! `δ·I` keeps CG convergent when the Hessian is indefinite (non-convex
//! MLPs) or barely positive definite.
//!
//! [`score_records`] then evaluates `-∇ℓ(zᵢ)·s` for every training record,
//! fanned out across scoped `std::thread` workers.
//!
//! The `InfLoss` baseline ("self-influence", §6.1.1) is also provided:
//! `-∇ℓ(z)ᵀ H⁻¹ ∇ℓ(z)` per record, which needs one CG solve *per training
//! record* — the paper measures it to be orders of magnitude slower, and
//! this implementation faithfully reproduces that cost profile (while
//! capping CG iterations so experiments still finish).

pub mod cg;
pub mod scoring;

pub use cg::{cg_solve, CgConfig, CgOutcome};
pub use scoring::{
    inverse_hvp, rank_descending, score_records, self_influence_scores, InfluenceConfig,
    RankedRecord,
};
