//! Influence scoring of training records.
//!
//! The pipeline is: (1) a debugger encodes its complaint as a gradient
//! `∇q(θ*)` in parameter space; (2) [`inverse_hvp`] solves the damped system
//! `(H + δI) s = ∇q` via conjugate gradient; (3) [`score_records`] computes
//! `score(zᵢ) = -∇ℓ(zᵢ, θ*)·s` for every training record in parallel.

use crate::cg::{cg_solve, CgConfig, CgOutcome};
use rain_linalg::vecops;
use rain_model::{Classifier, Dataset};

/// Parameters of the influence engine.
#[derive(Debug, Clone)]
pub struct InfluenceConfig {
    /// Damping δ added to the Hessian diagonal. Keeps CG well-posed on
    /// non-convex models; 0 is fine for L2-regularized convex models.
    pub damping: f64,
    /// Conjugate-gradient settings.
    pub cg: CgConfig,
    /// Worker threads for per-record scoring (≥1).
    pub threads: usize,
}

impl Default for InfluenceConfig {
    fn default() -> Self {
        InfluenceConfig {
            damping: 0.0,
            cg: CgConfig::default(),
            threads: 4,
        }
    }
}

impl InfluenceConfig {
    /// Settings for non-convex models: damping on, slightly looser CG.
    pub fn for_nonconvex() -> Self {
        InfluenceConfig {
            damping: 0.01,
            cg: CgConfig {
                max_iters: 100,
                rel_tol: 1e-4,
            },
            threads: 4,
        }
    }
}

/// A `(record id, influence score)` pair, sorted descending by score.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankedRecord {
    /// Stable record id (from [`Dataset::ids`]).
    pub id: usize,
    /// Influence score; larger means "removal helps the complaint more".
    pub score: f64,
}

/// Solve `(H + δI) s = g` where `H` is the Hessian of the model's full
/// training objective on `data`.
pub fn inverse_hvp(
    model: &dyn Classifier,
    data: &Dataset,
    g: &[f64],
    cfg: &InfluenceConfig,
) -> CgOutcome {
    assert_eq!(
        g.len(),
        model.n_params(),
        "inverse_hvp: gradient length mismatch"
    );
    cg_solve(
        |v| {
            let mut hv = model.hvp(data, v);
            if cfg.damping != 0.0 {
                vecops::axpy(cfg.damping, v, &mut hv);
            }
            hv
        },
        g,
        &cfg.cg,
    )
}

/// Score every training record against a solved direction `s = H⁻¹∇q`:
/// `score(zᵢ) = -∇ℓ(zᵢ)·s`. Returns scores aligned with `data` rows.
///
/// Scoring fans out over `threads` workers with `std::thread::scope`;
/// each worker owns a disjoint slice of the output so no synchronization is
/// needed on the hot path.
pub fn score_records(
    model: &dyn Classifier,
    data: &Dataset,
    s: &[f64],
    threads: usize,
) -> Vec<f64> {
    let n = data.len();
    let mut scores = vec![0.0; n];
    let workers = threads.clamp(1, n.max(1));
    if workers <= 1 || n < 64 {
        for (i, slot) in scores.iter_mut().enumerate() {
            *slot = -model.example_grad_dot(data.x(i), data.y(i), s);
        }
        return scores;
    }
    let chunk = n.div_ceil(workers);
    std::thread::scope(|scope| {
        for (w, out) in scores.chunks_mut(chunk).enumerate() {
            let start = w * chunk;
            scope.spawn(move || {
                for (k, slot) in out.iter_mut().enumerate() {
                    let i = start + k;
                    *slot = -model.example_grad_dot(data.x(i), data.y(i), s);
                }
            });
        }
    });
    scores
}

/// Self-influence scores (the `InfLoss` baseline, §6.1.1):
/// `score(zᵢ) = -∇ℓ(zᵢ)ᵀ H⁻¹ ∇ℓ(zᵢ)`, one CG solve per record.
///
/// This is deliberately expensive — the paper reports it as the slowest
/// method by far — so the records are distributed over a shared work queue
/// (uneven CG convergence makes static chunking unbalanced).
pub fn self_influence_scores(
    model: &dyn Classifier,
    data: &Dataset,
    cfg: &InfluenceConfig,
) -> Vec<f64> {
    let n = data.len();
    let scores: Vec<std::sync::Mutex<f64>> = (0..n).map(|_| std::sync::Mutex::new(0.0)).collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    let workers = cfg.threads.clamp(1, n.max(1));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let g = model.example_grad(data.x(i), data.y(i));
                let solved = inverse_hvp(model, data, &g, cfg);
                *scores[i].lock().expect("score slot poisoned") = -vecops::dot(&g, &solved.x);
            });
        }
    });
    scores
        .into_iter()
        .map(|m| m.into_inner().expect("score slot poisoned"))
        .collect()
}

/// Rank records descending by score, breaking ties by id for determinism.
pub fn rank_descending(data: &Dataset, scores: &[f64]) -> Vec<RankedRecord> {
    assert_eq!(scores.len(), data.len());
    let mut ranked: Vec<RankedRecord> = scores
        .iter()
        .enumerate()
        .map(|(i, &score)| RankedRecord {
            id: data.id(i),
            score,
        })
        .collect();
    ranked.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.id.cmp(&b.id))
    });
    ranked
}

#[cfg(test)]
mod tests {
    use super::*;
    use rain_linalg::{Matrix, RainRng};
    use rain_model::{train_lbfgs, LbfgsConfig, LogisticRegression};

    /// Two Gaussian blobs plus a handful of deliberately flipped labels.
    fn blobs_with_flips(n: usize, flips: usize, seed: u64) -> (Dataset, Vec<usize>) {
        let mut rng = RainRng::seed_from_u64(seed);
        let mut rows = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            let y = rng.bernoulli(0.5) as usize;
            let shift = if y == 1 { 1.5 } else { -1.5 };
            rows.push(vec![rng.normal() + shift, rng.normal() + shift]);
            labels.push(y);
        }
        let mut flipped = Vec::new();
        for i in 0..flips {
            let idx = i * (n / flips.max(1));
            labels[idx] = 1 - labels[idx];
            flipped.push(idx);
        }
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        (Dataset::new(Matrix::from_rows(&refs), labels, 2), flipped)
    }

    fn fitted(data: &Dataset) -> LogisticRegression {
        let mut m = LogisticRegression::new(data.dim(), 0.05);
        train_lbfgs(&mut m, data, &LbfgsConfig::default());
        m
    }

    #[test]
    fn inverse_hvp_satisfies_the_system() {
        let (data, _) = blobs_with_flips(120, 0, 1);
        let m = fitted(&data);
        let mut rng = RainRng::seed_from_u64(2);
        let g = rng.normal_vec(m.n_params(), 1.0);
        let cfg = InfluenceConfig::default();
        let out = inverse_hvp(&m, &data, &g, &cfg);
        assert!(out.converged);
        let back = m.hvp(&data, &out.x);
        assert!(vecops::approx_eq(&back, &g, 1e-4), "{back:?} vs {g:?}");
    }

    #[test]
    fn damping_changes_the_solution_consistently() {
        let (data, _) = blobs_with_flips(80, 0, 3);
        let m = fitted(&data);
        let g = vec![1.0; m.n_params()];
        let plain = inverse_hvp(&m, &data, &g, &InfluenceConfig::default());
        let damped = inverse_hvp(
            &m,
            &data,
            &g,
            &InfluenceConfig {
                damping: 10.0,
                ..Default::default()
            },
        );
        // Heavier damping shrinks the solution norm.
        assert!(vecops::norm2(&damped.x) < vecops::norm2(&plain.x));
    }

    #[test]
    fn parallel_scoring_matches_serial() {
        let (data, _) = blobs_with_flips(300, 5, 4);
        let m = fitted(&data);
        let mut rng = RainRng::seed_from_u64(5);
        let s = rng.normal_vec(m.n_params(), 1.0);
        let serial = score_records(&m, &data, &s, 1);
        let parallel = score_records(&m, &data, &s, 4);
        assert!(vecops::approx_eq(&serial, &parallel, 1e-12));
    }

    #[test]
    fn influence_matches_leave_one_out_direction() {
        // The influence approximation of removing record z should correlate
        // with the true leave-one-out change in a probe function. Use
        // q(θ) = mean predicted P(class 1) over a probe set.
        let (data, _) = blobs_with_flips(60, 6, 6);
        let m = fitted(&data);
        let probe: Vec<usize> = (0..10).collect();
        // ∇q = (1/|probe|) Σ ∇p₁(xᵢ)
        let mut gq = vec![0.0; m.n_params()];
        for &i in &probe {
            vecops::axpy(0.1, &m.grad_proba(data.x(i), 1), &mut gq);
        }
        let cfg = InfluenceConfig::default();
        let s = inverse_hvp(&m, &data, &gq, &cfg).x;
        let scores = score_records(&m, &data, &s, 1);
        let q_of = |model: &LogisticRegression| -> f64 {
            probe
                .iter()
                .map(|&i| model.predict_proba(data.x(i))[1])
                .sum::<f64>()
                / 10.0
        };
        let q0 = q_of(&m);
        // Spot-check a few leave-one-out retrainings.
        let mut agree = 0;
        let mut total = 0;
        for i in (10..60).step_by(10) {
            let reduced = data.select(&(0..data.len()).filter(|&j| j != i).collect::<Vec<_>>());
            let mut m2 = m.clone();
            train_lbfgs(&mut m2, &reduced, &LbfgsConfig::default());
            let dq = q_of(&m2) - q0;
            // score(z) = -∇q H⁻¹ ∇ℓ ≈ n·(q(θ₋z) - q(θ)) up to sign conv:
            // removal Δθ ≈ (1/n)H⁻¹∇ℓ ⇒ Δq ≈ (1/n)∇qᵀH⁻¹∇ℓ = -(1/n)score.
            let predicted = -scores[i] / data.len() as f64;
            total += 1;
            if (dq > 0.0) == (predicted > 0.0) || dq.abs() < 1e-6 {
                agree += 1;
            }
        }
        assert!(agree >= total - 1, "sign agreement {agree}/{total}");
    }

    #[test]
    fn self_influence_ranks_isolated_flips_high() {
        // With few corruptions the model does NOT overfit them, so
        // self-influence should place flipped records near the top
        // (this is the regime where InfLoss works, per §6.2).
        let (data, flipped) = blobs_with_flips(100, 4, 7);
        let m = fitted(&data);
        let cfg = InfluenceConfig {
            threads: 2,
            ..Default::default()
        };
        let scores = self_influence_scores(&m, &data, &cfg);
        // InfLoss ranks most-negative first.
        let mut order: Vec<usize> = (0..data.len()).collect();
        order.sort_by(|&a, &b| scores[a].partial_cmp(&scores[b]).unwrap());
        let top20: std::collections::HashSet<usize> = order[..20].iter().copied().collect();
        let hit = flipped.iter().filter(|i| top20.contains(i)).count();
        assert!(hit >= 3, "found {hit}/4 flips in top 20");
    }

    #[test]
    fn rank_descending_is_deterministic_under_ties() {
        let data = {
            let m = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0]]);
            Dataset::new(m, vec![0, 1, 1], 2)
        };
        let ranked = rank_descending(&data, &[1.0, 1.0, 0.5]);
        assert_eq!(ranked[0].id, 0);
        assert_eq!(ranked[1].id, 1);
        assert_eq!(ranked[2].id, 2);
    }
}
