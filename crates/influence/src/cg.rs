//! Conjugate-gradient solver for symmetric positive-definite operators.
//!
//! The operator is a closure (`v ↦ A·v`), so callers never materialize the
//! Hessian — exactly the Hessian-free approach of Martens \[51\] that the
//! paper adopts for influence computation.

use rain_linalg::vecops;

/// Conjugate-gradient parameters.
#[derive(Debug, Clone)]
pub struct CgConfig {
    /// Maximum CG iterations.
    pub max_iters: usize,
    /// Stop when `‖r‖ ≤ tol · ‖b‖`.
    pub rel_tol: f64,
}

impl Default for CgConfig {
    fn default() -> Self {
        CgConfig {
            max_iters: 100,
            rel_tol: 1e-6,
        }
    }
}

/// Result of a CG solve.
#[derive(Debug, Clone)]
pub struct CgOutcome {
    /// The (approximate) solution `x` with `A·x ≈ b`.
    pub x: Vec<f64>,
    /// Iterations performed.
    pub iters: usize,
    /// Final relative residual `‖b − Ax‖ / ‖b‖`.
    pub rel_residual: f64,
    /// True when the tolerance was met.
    pub converged: bool,
}

/// Solve `A x = b` by conjugate gradient where `apply(v) = A·v`.
///
/// `A` must be symmetric; convergence is guaranteed for positive-definite
/// `A` (which damping ensures for our Hessians). If a non-positive
/// curvature direction `pᵀAp ≤ 0` is encountered (possible with an
/// indefinite Hessian and insufficient damping), the solve stops early and
/// returns the best iterate so far — the standard truncated-Newton
/// safeguard.
pub fn cg_solve<F>(apply: F, b: &[f64], cfg: &CgConfig) -> CgOutcome
where
    F: Fn(&[f64]) -> Vec<f64>,
{
    let n = b.len();
    let bnorm = vecops::norm2(b);
    if bnorm == 0.0 {
        return CgOutcome {
            x: vec![0.0; n],
            iters: 0,
            rel_residual: 0.0,
            converged: true,
        };
    }
    let mut x = vec![0.0; n];
    let mut r = b.to_vec();
    let mut p = r.clone();
    let mut rs_old = vecops::norm2_sq(&r);
    let mut iters = 0;

    for _ in 0..cfg.max_iters {
        let rnorm = rs_old.sqrt();
        if rnorm <= cfg.rel_tol * bnorm {
            return CgOutcome {
                x,
                iters,
                rel_residual: rnorm / bnorm,
                converged: true,
            };
        }
        let ap = apply(&p);
        let pap = vecops::dot(&p, &ap);
        if pap <= 0.0 {
            // Negative/zero curvature: bail out with the current iterate.
            break;
        }
        let alpha = rs_old / pap;
        vecops::axpy(alpha, &p, &mut x);
        vecops::axpy(-alpha, &ap, &mut r);
        let rs_new = vecops::norm2_sq(&r);
        let beta = rs_new / rs_old;
        for (pi, &ri) in p.iter_mut().zip(&r) {
            *pi = ri + beta * *pi;
        }
        rs_old = rs_new;
        iters += 1;
    }
    let rel = rs_old.sqrt() / bnorm;
    CgOutcome {
        x,
        iters,
        rel_residual: rel,
        converged: rel <= cfg.rel_tol,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rain_linalg::{Matrix, RainRng};

    fn random_spd(n: usize, seed: u64) -> Matrix {
        let mut rng = RainRng::seed_from_u64(seed);
        let data: Vec<f64> = (0..n * n).map(|_| rng.normal()).collect();
        let m = Matrix::from_vec(n, n, data);
        let mut a = m.transpose().matmul(&m);
        for i in 0..n {
            a.set(i, i, a.get(i, i) + 1.0);
        }
        a
    }

    #[test]
    fn solves_identity_in_one_step() {
        let b = [3.0, -1.0, 2.0];
        let out = cg_solve(|v| v.to_vec(), &b, &CgConfig::default());
        assert!(out.converged);
        assert!(vecops::approx_eq(&out.x, &b, 1e-9));
    }

    #[test]
    fn matches_direct_cholesky_solve() {
        for seed in 0..5 {
            let a = random_spd(12, seed);
            let mut rng = RainRng::seed_from_u64(100 + seed);
            let b = rng.normal_vec(12, 1.0);
            let direct = a.solve_spd(&b).unwrap();
            let out = cg_solve(
                |v| a.matvec(v),
                &b,
                &CgConfig {
                    max_iters: 200,
                    rel_tol: 1e-10,
                },
            );
            assert!(out.converged, "seed {seed}");
            assert!(vecops::approx_eq(&out.x, &direct, 1e-6), "seed {seed}");
        }
    }

    #[test]
    fn zero_rhs_returns_zero() {
        let out = cg_solve(|v| v.to_vec(), &[0.0; 4], &CgConfig::default());
        assert!(out.converged);
        assert_eq!(out.x, vec![0.0; 4]);
        assert_eq!(out.iters, 0);
    }

    #[test]
    fn exact_in_n_iterations() {
        // CG converges in at most n steps in exact arithmetic.
        let a = random_spd(8, 42);
        let b = vec![1.0; 8];
        let out = cg_solve(
            |v| a.matvec(v),
            &b,
            &CgConfig {
                max_iters: 8,
                rel_tol: 1e-8,
            },
        );
        assert!(out.rel_residual < 1e-6);
    }

    #[test]
    fn bails_on_negative_curvature() {
        // A = -I is negative definite: pᵀAp < 0 at the very first step.
        let b = [1.0, 2.0];
        let out = cg_solve(|v| v.iter().map(|x| -x).collect(), &b, &CgConfig::default());
        assert!(!out.converged);
        assert_eq!(out.x, vec![0.0; 2]); // best iterate = initial point
    }

    #[test]
    fn respects_iteration_cap() {
        let a = random_spd(30, 7);
        let b = vec![1.0; 30];
        let out = cg_solve(
            |v| a.matvec(v),
            &b,
            &CgConfig {
                max_iters: 3,
                rel_tol: 1e-16,
            },
        );
        assert!(out.iters <= 3);
        assert!(!out.converged);
    }
}
