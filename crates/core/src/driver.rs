//! The train–rank–fix driver (paper §5.1).
//!
//! Each iteration (1) retrains the model — warm-started from the previous
//! iteration's parameters, as in appendix D — (2) re-executes every query
//! in debug mode, (3) checks the complaints, (4) ranks the current
//! training records with the chosen method, and (5) deletes the top-k.
//! The concatenation of the deleted batches is the explanation `D`; with
//! batch size k the driver runs `|D|/k` iterations (§5.1).
//!
//! Step (2) runs through the incremental subsystem by default
//! ([`RunConfig::incremental`]): each query's model-independent skeleton
//! is prepared once per run and refreshed per iteration — bit-identical
//! output to a full debug execution, at a fraction of the per-iteration
//! cost (see `rain_sql::incremental`).

use crate::complaint::QuerySpec;
use crate::metrics;
use crate::rank::{rank, Method, RankContext, RankError};
use crate::twostep::SqlStepConfig;
use rain_influence::InfluenceConfig;
use rain_model::{train_lbfgs, Classifier, Dataset, LbfgsConfig};
use rain_sql::{
    execute, prepare_with, Database, Engine, ExecOptions, PreparedQuery, QueryError, QueryOutput,
    QueryPlan, ScoreMemo, StalePolicy,
};
use std::time::Instant;

// The serving layer moves sessions and their prepared state across
// threads (job-runner workers execute runs off the accept path); keep
// that guaranteed at compile time.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<DebugSession>();
    assert_send::<PreparedQueries>();
    assert_send::<DebugReport>();
};

/// A debugging session: the queried database, the (possibly corrupted)
/// training set, the model, and the complained-about queries.
pub struct DebugSession {
    /// The queried database `D`.
    pub db: Database,
    /// The training set `T`.
    pub train: Dataset,
    /// The model prototype (defines architecture and initial parameters).
    pub model: Box<dyn Classifier>,
    /// Queries with complaints.
    pub queries: Vec<QuerySpec>,
    /// Training configuration.
    pub train_cfg: LbfgsConfig,
    /// Influence-engine configuration.
    pub influence: InfluenceConfig,
    /// TwoStep SQL-step configuration.
    pub sqlstep: SqlStepConfig,
}

impl DebugSession {
    /// Create a session with default training/influence settings.
    pub fn new(db: Database, train: Dataset, model: Box<dyn Classifier>) -> Self {
        DebugSession {
            db,
            train,
            model,
            queries: Vec::new(),
            train_cfg: LbfgsConfig::default(),
            influence: InfluenceConfig::default(),
            sqlstep: SqlStepConfig::default(),
        }
    }

    /// Attach a complained-about query (builder style).
    pub fn with_query(mut self, q: QuerySpec) -> Self {
        self.queries.push(q);
        self
    }

    /// Parse, bind, and optimize every attached query
    /// (`parser → binder → optimizer`); the returned plans are executed
    /// directly on each iteration of the loop.
    pub fn plan_queries(&self) -> Result<Vec<QueryPlan>, QueryError> {
        self.queries
            .iter()
            .map(|q| {
                let stmt = rain_sql::parse_select(&q.sql).map_err(QueryError::Parse)?;
                let bound = rain_sql::bind(&stmt, &self.db)?;
                Ok(rain_sql::optimize(bound, &self.db))
            })
            .collect()
    }

    /// Plan — and, when `incremental` is on, *prepare* — every attached
    /// query: the model-independent skeleton (joined candidate tuples,
    /// group partitions, provenance sums, feature bindings) is captured
    /// once, and each loop iteration re-runs only the model — a batched
    /// inference plus a discrete re-evaluation.
    ///
    /// The result is deliberately separable from the session: a serving
    /// layer keeps it (or the skeletons inside it, via its query cache)
    /// alive across runs, so a follow-up debug run skips planning and
    /// skeleton capture entirely.
    pub fn prepare_queries(&self, incremental: bool) -> Result<PreparedQueries, QueryError> {
        self.prepare_queries_with(incremental, Engine::Vectorized, 0)
    }

    /// [`DebugSession::prepare_queries`] with an explicit capture engine
    /// and worker budget (`threads`: `0` = auto, `1` = sequential) — what
    /// [`DebugSession::run`] calls with [`RunConfig::engine`] /
    /// [`RunConfig::threads`].
    pub fn prepare_queries_with(
        &self,
        incremental: bool,
        engine: Engine,
        threads: usize,
    ) -> Result<PreparedQueries, QueryError> {
        let t_prepare = Instant::now();
        let plans = self.plan_queries()?;
        let prepared: Vec<PreparedQuery> = if incremental {
            plans
                .iter()
                .map(|p| prepare_with(&self.db, self.model.as_ref(), p, engine, threads))
                .collect::<Result<_, _>>()?
        } else {
            Vec::new()
        };
        Ok(PreparedQueries {
            plans,
            prepared,
            prepare_s: t_prepare.elapsed().as_secs_f64(),
        })
    }

    /// Run the train–rank–fix loop with one method.
    ///
    /// With [`RunConfig::profile`] on, the whole run — including the
    /// one-time plan/prepare — executes under a `debug-run` trace span
    /// and the harvested tree lands in [`DebugReport::profile`].
    pub fn run(&self, method: Method, cfg: &RunConfig) -> Result<DebugReport, QueryError> {
        let _tracing = cfg.profile.then(rain_obs::activate);
        let root = rain_obs::Span::enter("debug-run");
        let root_id = root.id();
        let pq = {
            let _s = rain_obs::Span::enter("prepare-queries");
            self.prepare_queries_with(cfg.incremental, cfg.engine, cfg.threads)
        };
        let result = pq.and_then(|mut pq| self.run_loop(method, cfg, &mut pq));
        drop(root);
        // Drain this run's subtree even on error so the bounded global
        // buffer never accumulates orphaned records. The tree is attached
        // only when this run asked for it: an ambient trace (another
        // run's sampling window, a live `EXPLAIN ANALYZE`) may have
        // recorded our root, and attaching that would make the report's
        // shape depend on unrelated concurrent activity.
        let profile = rain_obs::take_subtree(root_id);
        let mut report = result?;
        report.profile = cfg.profile.then_some(profile).flatten();
        Ok(report)
    }

    /// [`DebugSession::run`] against externally held planned/prepared
    /// state. `pq` is borrowed mutably because refreshes transparently
    /// re-prepare stale skeletons ([`StalePolicy::Rebuild`]) — a
    /// long-lived server's fix path may re-register queried tables
    /// between runs; inside the library loop fixes mutate only the
    /// training set, so rebuilds never trigger there.
    pub fn run_prepared(
        &self,
        method: Method,
        cfg: &RunConfig,
        pq: &mut PreparedQueries,
    ) -> Result<DebugReport, QueryError> {
        let _tracing = cfg.profile.then(rain_obs::activate);
        let root = rain_obs::Span::enter("debug-run");
        let root_id = root.id();
        let result = self.run_loop(method, cfg, pq);
        drop(root);
        let profile = rain_obs::take_subtree(root_id);
        let mut report = result?;
        report.profile = cfg.profile.then_some(profile).flatten();
        Ok(report)
    }

    /// The iteration loop shared by [`DebugSession::run`] and
    /// [`DebugSession::run_prepared`]; the callers own the trace root so
    /// a run's profile is harvested exactly once.
    fn run_loop(
        &self,
        method: Method,
        cfg: &RunConfig,
        pq: &mut PreparedQueries,
    ) -> Result<DebugReport, QueryError> {
        // The one-time plan/prepare cost is charged to the first
        // iteration's encode phase so incremental timing trajectories
        // stay cost-complete against full re-execution. (Taken, so state
        // reused across runs is not double-charged.)
        let mut pending_prepare_s = std::mem::take(&mut pq.prepare_s);
        let mut skeleton_rebuilds = 0usize;
        // Refresh-aware complaint checking: a query's debug output is a
        // pure function of the hard predictions over its variables (the
        // skeleton is fixed for the run), so if no prediction the query
        // depends on flipped this iteration, last iteration's
        // satisfied/violated verdict still stands. Model-free plans
        // (`QueryPlan::model_deps`) can never flip; model-dependent ones
        // are re-checked only when their prediction vector changed.
        let model_free: Vec<bool> = pq
            .plans
            .iter()
            .map(|p| p.model_deps().is_model_free())
            .collect();
        let mut last_verdict: Vec<Option<(Vec<usize>, bool)>> = vec![None; self.queries.len()];
        let mut model = self.model.clone();
        let mut train = self.train.clone();
        let mut removed: Vec<usize> = Vec::new();
        let mut iterations = Vec::new();
        let mut failure = None;
        // Always-on sampled profiling: 1-in-N iterations run under a
        // scoped trace of their own and are harvested after the loop.
        // Skipped whenever a trace is already live — a `?profile=1` run
        // (or ambient trace) records everything, and claiming the
        // iteration subtree here would tear that full profile apart.
        let mut sampled: Vec<(usize, rain_obs::SpanId)> = Vec::new();
        let mut exec_err: Option<QueryError> = None;
        // Prediction memo shared by every refresh of the run: within one
        // iteration the queries' duplicate feature rows score once; the
        // retrain at the top of each iteration advances the generation,
        // which drops every cached score before it could go stale.
        let mut memo = (cfg.memo && !pq.prepared.is_empty()).then(ScoreMemo::new);

        'run: while removed.len() < cfg.budget {
            let sampling = cfg.sample_every > 0
                && !rain_obs::enabled()
                && iterations.len() % cfg.sample_every == 0;
            let _iter_trace = sampling.then(rain_obs::activate);
            let mut iter_span = rain_obs::Span::enter("iteration");
            if sampling && iter_span.is_recording() {
                sampled.push((iterations.len(), iter_span.id()));
            }
            // (0) Train, warm-started.
            let t_train = Instant::now();
            let warm = if iterations.is_empty() {
                self.train_cfg.clone()
            } else {
                LbfgsConfig {
                    max_iters: self.train_cfg.max_iters.min(60),
                    ..self.train_cfg.clone()
                }
            };
            let report = {
                let _s = rain_obs::Span::enter("train");
                train_lbfgs(model.as_mut(), &train, &warm)
            };
            let train_s = t_train.elapsed().as_secs_f64();
            if let Some(m) = memo.as_mut() {
                // The retrain produced a new model generation (numbered
                // by loop pass); scores cached under the old one are dead.
                m.advance(iterations.len() as u64 + 1);
            }

            // (1-2) Execute the queries in debug mode. Re-execution runs
            // on `cfg.engine` (the vectorized engine by default — it
            // dominates per-iteration cost and is provenance-identical
            // to the tuple oracle) under the run's worker budget.
            let t_exec = Instant::now();
            let mut outputs: Vec<QueryOutput> = Vec::with_capacity(pq.plans.len());
            {
                // The sql layer's own spans (refresh/inference/re-eval,
                // or scan/join/… on the full path) nest under this one.
                let _s = rain_obs::Span::enter("execute");
                for qi in 0..pq.plans.len() {
                    // Errors break to the post-loop harvest (instead of
                    // `?`-returning) so sampled iteration records never
                    // linger in the trace buffers.
                    outputs.push(if pq.prepared.is_empty() {
                        match execute(
                            &self.db,
                            model.as_ref(),
                            &pq.plans[qi],
                            ExecOptions::debug()
                                .with_engine(cfg.engine)
                                .with_threads(cfg.threads),
                        ) {
                            Ok(out) => out,
                            Err(e) => {
                                exec_err = Some(e);
                                break 'run;
                            }
                        }
                    } else {
                        let refreshed = match memo.as_mut() {
                            Some(m) => pq.prepared[qi].refresh_with_memo_threaded(
                                &self.db,
                                model.as_ref(),
                                StalePolicy::Rebuild,
                                cfg.threads,
                                m,
                            ),
                            None => pq.prepared[qi].refresh_with_threaded(
                                &self.db,
                                model.as_ref(),
                                StalePolicy::Rebuild,
                                cfg.threads,
                            ),
                        };
                        match refreshed {
                            Ok((out, rebuilt)) => {
                                skeleton_rebuilds += rebuilt as usize;
                                out
                            }
                            Err(e) => {
                                exec_err = Some(e);
                                break 'run;
                            }
                        }
                    });
                }
            }
            let exec_s = t_exec.elapsed().as_secs_f64();

            // (3) Complaint check, skipping queries whose depended-on
            // predictions did not flip this iteration.
            let mut checks_skipped = 0usize;
            let mut satisfied = true;
            let check_span = rain_obs::Span::enter("check");
            for (qi, (q, out)) in self.queries.iter().zip(&outputs).enumerate() {
                let preds = out.predvars.preds();
                let q_sat = match &last_verdict[qi] {
                    Some((prev, sat)) if model_free[qi] || prev == preds => {
                        checks_skipped += q.complaints.len();
                        *sat
                    }
                    _ => {
                        let sat = q.complaints.iter().all(|c| c.satisfied(out));
                        last_verdict[qi] = Some((preds.to_vec(), sat));
                        sat
                    }
                };
                satisfied &= q_sat;
            }
            drop(check_span);
            iter_span.add("checks_skipped", checks_skipped as u64);
            if satisfied && cfg.stop_when_satisfied {
                iterations.push(IterStats {
                    train_s,
                    encode_s: exec_s + std::mem::take(&mut pending_prepare_s),
                    rank_s: 0.0,
                    removed: Vec::new(),
                    complaints_satisfied: true,
                    checks_skipped,
                    train_loss: report.final_loss,
                });
                break;
            }

            // (4) Rank.
            let sqlstep = SqlStepConfig {
                seed: self.sqlstep.seed ^ (iterations.len() as u64).wrapping_mul(0x9E37),
                ..self.sqlstep.clone()
            };
            let ctx = RankContext {
                db: &self.db,
                model: model.as_ref(),
                train: &train,
                outputs: &outputs,
                queries: &self.queries,
                influence: &self.influence,
                sqlstep: &sqlstep,
            };
            let rank_span = rain_obs::Span::enter("rank");
            let ranking = match rank(method, &ctx) {
                Ok(r) => r,
                Err(e @ (RankError::IlpTimeout | RankError::Infeasible)) => {
                    failure = Some(e.to_string());
                    break;
                }
            };
            drop(rank_span);

            // (5) Remove the top-k.
            let k = cfg.k_per_iter.min(cfg.budget - removed.len());
            let batch: Vec<usize> = ranking.records.iter().take(k).map(|r| r.id).collect();
            if batch.is_empty() {
                break;
            }
            train = train.remove_ids(&batch);
            removed.extend(batch.iter().copied());
            iter_span.add("removed", batch.len() as u64);
            iterations.push(IterStats {
                train_s,
                encode_s: exec_s + ranking.encode_s + std::mem::take(&mut pending_prepare_s),
                rank_s: ranking.rank_s,
                removed: batch,
                complaints_satisfied: satisfied,
                checks_skipped,
                train_loss: report.final_loss,
            });
            if train.is_empty() {
                break;
            }
        }
        // Harvest the sampled iteration subtrees (in iteration order),
        // retaining the most recent [`MAX_ITERATION_PROFILES`]. Older
        // ones are still drained from the trace buffers — sampling must
        // never leak records — and harvest happens even when the run
        // failed, before the error propagates.
        let mut iteration_profiles = Vec::new();
        for (iteration, id) in sampled {
            if let Some(profile) = rain_obs::take_subtree(id) {
                iteration_profiles.push(IterationProfile { iteration, profile });
                if iteration_profiles.len() > MAX_ITERATION_PROFILES {
                    iteration_profiles.remove(0);
                }
            }
        }
        if let Some(e) = exec_err {
            return Err(e);
        }
        let (memo_hits, memo_misses) = memo.map_or((0, 0), |m| (m.hits(), m.misses()));
        Ok(DebugReport {
            removed,
            iterations,
            skeleton_rebuilds,
            memo_hits,
            memo_misses,
            failure,
            profile: None,
            iteration_profiles,
        })
    }
}

/// The planned (and optionally skeleton-prepared) form of a session's
/// queries: what [`DebugSession::run_prepared`] actually executes,
/// separable from the session so callers can keep it warm across runs.
#[derive(Debug, Clone)]
pub struct PreparedQueries {
    /// Optimized physical plan per attached query, in query order.
    pub plans: Vec<QueryPlan>,
    /// Prepared skeleton per query; empty = full re-execution per
    /// iteration (the `incremental: false` oracle path).
    pub prepared: Vec<PreparedQuery>,
    /// Seconds spent planning + preparing, charged to the first
    /// iteration's encode phase of the next run (then zeroed).
    prepare_s: f64,
}

impl PreparedQueries {
    /// Assemble from externally cached parts (e.g. skeletons checked out
    /// of a [`QueryCache`](rain_sql::QueryCache)); `prepared` must be
    /// empty or match `plans` element-wise.
    ///
    /// # Panics
    /// Panics on a length mismatch between non-empty `prepared` and
    /// `plans`.
    pub fn from_parts(plans: Vec<QueryPlan>, prepared: Vec<PreparedQuery>) -> Self {
        assert!(
            prepared.is_empty() || prepared.len() == plans.len(),
            "one prepared skeleton per plan"
        );
        PreparedQueries {
            plans,
            prepared,
            prepare_s: 0.0,
        }
    }

    /// Tear down into `(plans, prepared)` — the inverse of
    /// [`PreparedQueries::from_parts`], used to return skeletons to a
    /// cache after a run.
    pub fn into_parts(self) -> (Vec<QueryPlan>, Vec<PreparedQuery>) {
        (self.plans, self.prepared)
    }
}

/// Driver configuration.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Records removed per iteration (the paper uses 10, §6.1.1).
    pub k_per_iter: usize,
    /// Total removal budget `|D|` (typically the corruption count K).
    pub budget: usize,
    /// Stop as soon as every complaint is concretely satisfied.
    pub stop_when_satisfied: bool,
    /// Re-execute via the incremental prepare/refresh path (the default):
    /// the model-independent query skeleton is captured once per run and
    /// each iteration only refreshes predictions. Off = full debug-mode
    /// re-execution per iteration (the oracle path; output is identical).
    pub incremental: bool,
    /// Engine for query capture and (non-incremental) re-execution.
    /// Results and provenance are engine-independent; the tuple engine is
    /// the slow differential oracle.
    pub engine: Engine,
    /// Worker budget for morsel-parallel execution and batched refresh
    /// inference: `0` (the default) = the machine's available
    /// parallelism, `1` = fully sequential. Output is bit-identical at
    /// every setting; a server uses this as a per-session cap.
    pub threads: usize,
    /// Collect a per-iteration trace of the run ([`rain_obs`] spans) and
    /// attach it as [`DebugReport::profile`]. Off by default: instrumented
    /// code paths are inert when no trace is active, and the loop's
    /// outputs are bit-identical either way.
    pub profile: bool,
    /// Always-on sampled profiling: every `sample_every`-th iteration
    /// (starting with the first) runs under a scoped trace and its span
    /// tree lands in [`DebugReport::iteration_profiles`] — so the
    /// profile of the iteration that went wrong already exists when the
    /// operator asks for it. `0` disables sampling; sampling also stands
    /// down while any trace is already live ([`RunConfig::profile`] or
    /// an ambient [`rain_obs::activate`] covers everything). Outputs are
    /// bit-identical at every setting. Default 16 (1-in-16); the serving
    /// layer overrides it per session.
    pub sample_every: usize,
    /// Route incremental refreshes through a run-scoped
    /// [`ScoreMemo`]: classifier scores are cached by (model generation,
    /// feature-row hash), so within one iteration duplicate feature rows
    /// — across tuples and across queries — run inference once. On by
    /// default; outputs are bit-identical either way (the memo only
    /// changes which rows reach the model). No effect when
    /// [`RunConfig::incremental`] is off.
    pub memo: bool,
}

impl RunConfig {
    /// The paper's settings: batches of 10, removing `budget` records.
    pub fn paper(budget: usize) -> Self {
        RunConfig {
            k_per_iter: 10,
            budget,
            stop_when_satisfied: false,
            incremental: true,
            engine: Engine::Vectorized,
            threads: 0,
            profile: false,
            sample_every: 16,
            memo: true,
        }
    }
}

/// Timing and bookkeeping for one train–rank–fix iteration.
#[derive(Debug, Clone)]
pub struct IterStats {
    /// Seconds retraining the model.
    pub train_s: f64,
    /// Seconds executing queries + building the complaint encoding
    /// (Figure 5's "Encode").
    pub encode_s: f64,
    /// Seconds in the influence solve + scoring (Figure 5's "Rank").
    pub rank_s: f64,
    /// Ids removed this iteration, in rank order.
    pub removed: Vec<usize>,
    /// Whether all complaints were satisfied *before* this removal.
    pub complaints_satisfied: bool,
    /// Complaint checks skipped because no prediction the query depends
    /// on flipped since the last check (refresh-aware checking).
    pub checks_skipped: usize,
    /// Training objective after retraining.
    pub train_loss: f64,
}

/// The outcome of a debugging run.
#[derive(Debug, Clone)]
pub struct DebugReport {
    /// All removed training ids, in removal order (the explanation `D`).
    pub removed: Vec<usize>,
    /// Per-iteration statistics.
    pub iterations: Vec<IterStats>,
    /// Stale query skeletons transparently re-prepared during the run
    /// (non-zero only when queried tables changed under the session).
    pub skeleton_rebuilds: usize,
    /// Feature rows whose refresh inference was served from the run's
    /// [`ScoreMemo`] (0 when [`RunConfig::memo`] or
    /// [`RunConfig::incremental`] was off).
    pub memo_hits: u64,
    /// Feature rows the memoized refreshes actually ran inference for.
    pub memo_misses: u64,
    /// Set when the method failed (e.g. TwoStep ILP timeout).
    pub failure: Option<String>,
    /// Span tree of the run — one `iteration` child per loop pass, each
    /// covering `train`/`execute`/`check`/`rank` (with the sql layer's
    /// operator and refresh spans nested below). `Some` only when
    /// [`RunConfig::profile`] was on.
    pub profile: Option<rain_obs::TraceNode>,
    /// Sampled per-iteration span trees ([`RunConfig::sample_every`]),
    /// oldest evicted past [`MAX_ITERATION_PROFILES`]. Empty when
    /// sampling was off or a full profile was being collected instead.
    pub iteration_profiles: Vec<IterationProfile>,
}

/// One sampled iteration's span tree (see [`RunConfig::sample_every`]).
#[derive(Debug, Clone)]
pub struct IterationProfile {
    /// Zero-based index of the loop pass this trace covers.
    pub iteration: usize,
    /// The harvested `iteration` span tree
    /// (`train`/`execute`/`check`/`rank` children).
    pub profile: rain_obs::TraceNode,
}

/// Most sampled iteration profiles retained per run (most recent win).
pub const MAX_ITERATION_PROFILES: usize = 8;

impl DebugReport {
    /// Recall@k curve of the removals against ground-truth corruptions.
    pub fn recall_curve(&self, truth: &[usize]) -> Vec<f64> {
        metrics::recall_curve(&self.removed, truth)
    }

    /// AUCCR against ground-truth corruptions.
    pub fn auccr(&self, truth: &[usize]) -> f64 {
        metrics::auccr(&self.removed, truth)
    }

    /// Mean per-iteration timing `(train, encode, rank)` in seconds.
    pub fn mean_timings(&self) -> (f64, f64, f64) {
        let n = self.iterations.len().max(1) as f64;
        let (mut t, mut e, mut r) = (0.0, 0.0, 0.0);
        for it in &self.iterations {
            t += it.train_s;
            e += it.encode_s;
            r += it.rank_s;
        }
        (t / n, e / n, r / n)
    }
}
