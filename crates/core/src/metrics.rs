//! Evaluation metrics: recall@k curves and AUCCR (paper §6.1.5).

use std::collections::HashSet;

/// Recall curve `r_k` for `k = 1..=K` where `K = truth.len()`:
/// the fraction of ground-truth corrupted ids found in the first `k`
/// returned records. If fewer than `K` records were returned, the curve
/// plateaus at its final value.
pub fn recall_curve(returned: &[usize], truth: &[usize]) -> Vec<f64> {
    let truth_set: HashSet<usize> = truth.iter().copied().collect();
    let k_max = truth.len();
    if k_max == 0 {
        return Vec::new();
    }
    let mut curve = Vec::with_capacity(k_max);
    let mut hits = 0usize;
    for k in 0..k_max {
        if let Some(id) = returned.get(k) {
            if truth_set.contains(id) {
                hits += 1;
            }
        }
        curve.push(hits as f64 / k_max as f64);
    }
    curve
}

/// AUCCR: the normalized area under the corruption-recall curve,
/// `AUC = (2/K) Σ_{k=1..K} r_k` (§6.1.5). A method that recovers every
/// corruption immediately scores ≈1; random performance scores ≈ the
/// corruption base rate.
pub fn auccr(returned: &[usize], truth: &[usize]) -> f64 {
    let curve = recall_curve(returned, truth);
    if curve.is_empty() {
        return 0.0;
    }
    2.0 * curve.iter().sum::<f64>() / curve.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_ranking_has_unit_auc() {
        let truth = vec![5, 6, 7, 8];
        let curve = recall_curve(&[5, 6, 7, 8, 1, 2], &truth);
        assert_eq!(curve, vec![0.25, 0.5, 0.75, 1.0]);
        let auc = auccr(&[5, 6, 7, 8], &truth);
        // (2/4)(0.25+0.5+0.75+1.0) = 1.25 — slightly above 1 by the
        // paper's normalization; perfect is the max achievable.
        assert!((auc - 1.25).abs() < 1e-12);
    }

    #[test]
    fn worst_ranking_is_zero() {
        let truth = vec![1, 2];
        assert_eq!(recall_curve(&[9, 8], &truth), vec![0.0, 0.0]);
        assert_eq!(auccr(&[9, 8], &truth), 0.0);
    }

    #[test]
    fn short_returned_list_plateaus() {
        let truth = vec![1, 2, 3, 4];
        let curve = recall_curve(&[1], &truth);
        assert_eq!(curve, vec![0.25, 0.25, 0.25, 0.25]);
    }

    #[test]
    fn interleaved_ranking() {
        let truth = vec![1, 2];
        let curve = recall_curve(&[1, 9, 2], &truth);
        assert_eq!(curve, vec![0.5, 0.5]);
    }

    #[test]
    fn empty_truth_is_empty_curve() {
        assert!(recall_curve(&[1, 2], &[]).is_empty());
        assert_eq!(auccr(&[1, 2], &[]), 0.0);
    }
}
