//! TwoStep's SQL step (paper §5.2): turn complaints into an ILP over the
//! prediction view, solve it, and return the "repairs" — the predictions
//! the solver decided to mark as mispredictions.
//!
//! Structure mirrors a production solver: a **presolve** layer recognizes
//! the common constraint shapes and solves them directly (with seeded
//! arbitrary choice among the many optima — the ambiguity §5.2.2 warns
//! about), and a **generic path** Tseitin-linearizes arbitrary provenance
//! formulas into `rain-ilp`'s branch-and-bound with a node budget that
//! reproduces the paper's 30-minute timeouts:
//!
//! 1. labeled-prediction complaints → fixed assignments;
//! 2. cardinality complaints (COUNT / AVG-of-prediction cells whose rows
//!    are single atoms) → direct random minimal repair;
//! 3. join-disequality tuple complaints → bipartite minimum vertex cover
//!    (König / Hopcroft–Karp, exact);
//! 4. `COUNT(join) = 0` over `PredEq` pairs → optimal class partition by
//!    subset enumeration;
//! 5. everything else → Tseitin → branch & bound (may time out).

use crate::complaint::{Complaint, ValueOp};
use rain_ilp::{
    konig_min_vertex_cover, solve_ilp, BbConfig, BipartiteGraph, Constraint, IlpOutcome,
    IlpProblem, Sense,
};
use rain_linalg::RainRng;
use rain_sql::{AggTerm, BoolProv, CellProv, QueryOutput, VarId};
use std::collections::{BTreeMap, HashMap, HashSet};

/// Outcome of the SQL step for one query.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlStep {
    /// Repairs: `(prediction variable, corrected class)` for every
    /// prediction marked as a misprediction (`t ≠ r`).
    Repairs(Vec<(VarId, usize)>),
    /// The ILP could not be solved within budget (the paper's 30-minute
    /// wall on high-ambiguity instances).
    Timeout,
    /// A complaint is unsatisfiable under any prediction assignment.
    Infeasible,
}

/// Configuration of the SQL step.
#[derive(Debug, Clone)]
pub struct SqlStepConfig {
    /// Seed for arbitrary-optimum selection.
    pub seed: u64,
    /// Branch-and-bound budget for the generic path.
    pub bb: BbConfig,
    /// Generic-path size wall: if the linearized ILP would exceed this
    /// many 0/1 variables, report [`SqlStep::Timeout`] (matching the
    /// paper's experience on the mix-rate workload).
    pub max_ilp_vars: usize,
}

impl Default for SqlStepConfig {
    fn default() -> Self {
        SqlStepConfig {
            seed: 0,
            bb: BbConfig::default(),
            max_ilp_vars: 4000,
        }
    }
}

/// Run the SQL step: decide which predictions to mark as mispredictions
/// so the complaints would be satisfied, changing as few as possible.
pub fn sql_step(
    out: &QueryOutput,
    complaints: &[Complaint],
    n_classes: usize,
    cfg: &SqlStepConfig,
) -> SqlStep {
    let preds = out.predvars.preds();
    let mut span = rain_obs::Span::enter("sql-step");
    span.add("n_vars", preds.len() as u64);
    span.add("n_complaints", complaints.len() as u64);
    let mut rng = RainRng::seed_from_u64(cfg.seed);
    // Final assignment overrides: var → class (repairs and fixed points).
    let mut assign: BTreeMap<VarId, usize> = BTreeMap::new();
    let mut generic: Vec<&Complaint> = Vec::new();
    let mut pair_complaints: Vec<(VarId, VarId)> = Vec::new();

    // Stage 1: labeled mispredictions are fixed assignments.
    for c in complaints {
        if let Complaint::PredictionIs { table, row, class } = c {
            match out.predvars.lookup(table, *row) {
                Some(var) => {
                    assign.insert(var, *class);
                }
                None => return SqlStep::Infeasible,
            }
        }
    }

    // Stage 2/3/4 recognizers; anything unhandled goes generic.
    for c in complaints {
        match c {
            Complaint::PredictionIs { .. } => {}
            Complaint::Value {
                row,
                agg,
                op,
                target,
            } => {
                let Some(cell) = out.agg_cells.get(*row).and_then(|r| r.get(*agg)) else {
                    return SqlStep::Infeasible;
                };
                match try_cardinality(cell, preds, &assign, *op, *target, n_classes, &mut rng) {
                    Recognized::Solved(repairs) => assign.extend(repairs),
                    Recognized::Satisfied => {}
                    Recognized::Infeasible => return SqlStep::Infeasible,
                    Recognized::Unmatched => {
                        match try_join_partition(cell, preds, *op, *target, n_classes, &mut rng) {
                            Recognized::Solved(repairs) => assign.extend(repairs),
                            Recognized::Satisfied => {}
                            Recognized::Infeasible => return SqlStep::Infeasible,
                            Recognized::Unmatched => generic.push(c),
                        }
                    }
                }
            }
            Complaint::TupleDelete { row } => match out.row_prov.get(*row) {
                Some(BoolProv::PredEq { left, right }) => {
                    pair_complaints.push((*left, *right));
                }
                Some(_) => generic.push(c),
                None => {} // already absent → satisfied
            },
            Complaint::JoinDelete { left, right } => {
                // Pairs never predicted cannot join; nothing to repair.
                if let (Some(l), Some(r)) = (
                    out.predvars.lookup(&left.0, left.1),
                    out.predvars.lookup(&right.0, right.1),
                ) {
                    pair_complaints.push((l, r));
                }
            }
        }
    }

    // Stage 3: join-disequality system via minimum vertex cover.
    if !pair_complaints.is_empty() {
        match solve_pairs(&pair_complaints, preds, &mut assign, n_classes, &mut rng) {
            Ok(()) => {}
            Err(()) => return SqlStep::Infeasible,
        }
    }

    // Stage 5: generic Tseitin + branch & bound.
    if !generic.is_empty() {
        let _s = rain_obs::Span::enter("ilp");
        match solve_generic(out, &generic, preds, &assign, n_classes, cfg) {
            GenericOutcome::Solved(sol) => assign.extend(sol),
            GenericOutcome::Timeout => return SqlStep::Timeout,
            GenericOutcome::Infeasible => return SqlStep::Infeasible,
        }
    }

    // Repairs are assignments that actually change the prediction.
    let repairs: Vec<(VarId, usize)> = assign
        .into_iter()
        .filter(|&(v, c)| preds[v as usize] != c)
        .collect();
    SqlStep::Repairs(repairs)
}

enum Recognized {
    Solved(Vec<(VarId, usize)>),
    Satisfied,
    Infeasible,
    Unmatched,
}

/// A class different from `avoid`, chosen at random — the "90 ways to fix
/// it" arbitrariness of §6.3.
fn random_other_class(avoid: usize, n_classes: usize, rng: &mut RainRng) -> usize {
    loop {
        let c = rng.below(n_classes);
        if c != avoid {
            return c;
        }
    }
}

/// Recognizer for cardinality cells: COUNT whose rows are single
/// `PredIs` atoms over distinct variables, or binary AVG-of-prediction
/// with constant membership. Solves `Σ [pred(v)=class_v] op target`.
fn try_cardinality(
    cell: &CellProv,
    preds: &[usize],
    fixed: &BTreeMap<VarId, usize>,
    op: ValueOp,
    target: f64,
    n_classes: usize,
    rng: &mut RainRng,
) -> Recognized {
    // Extract (var, class) atoms: "this row is in iff pred(var)=class".
    let atoms: Option<Vec<(VarId, usize)>> = match cell {
        CellProv::Sum(s) => s
            .terms
            .iter()
            .map(|(f, t)| match (f, t) {
                (BoolProv::PredIs { var, class }, AggTerm::One) => Some((*var, *class)),
                _ => None,
            })
            .collect(),
        CellProv::Ratio(num, den) => {
            // Binary AVG(predict): constant membership, PredValue terms.
            if n_classes != 2 || num.terms.len() != den.terms.len() {
                return Recognized::Unmatched;
            }
            num.terms
                .iter()
                .map(|(f, t)| match (f, t) {
                    (BoolProv::Const(true), AggTerm::PredValue(var)) => Some((*var, 1usize)),
                    _ => None,
                })
                .collect()
        }
        _ => return Recognized::Unmatched,
    };
    let Some(atoms) = atoms else {
        return Recognized::Unmatched;
    };
    // Distinct variables required for the independent-flip argument.
    let distinct: HashSet<VarId> = atoms.iter().map(|&(v, _)| v).collect();
    if distinct.len() != atoms.len() {
        return Recognized::Unmatched;
    }
    // AVG targets are fractions of the denominator.
    let target_count = match cell {
        CellProv::Ratio(_, den) => (target * den.terms.len() as f64).round(),
        _ => target.round(),
    };
    let class_of = |v: VarId| fixed.get(&v).copied().unwrap_or(preds[v as usize]);
    let current: i64 = atoms.iter().filter(|&&(v, c)| class_of(v) == c).count() as i64;
    let want = target_count as i64;
    let need = match op {
        ValueOp::Eq => want - current,
        ValueOp::Le if current > want => want - current,
        ValueOp::Ge if current < want => want - current,
        _ => return Recognized::Satisfied,
    };
    if need == 0 {
        return Recognized::Satisfied;
    }
    let mut repairs = Vec::new();
    if need > 0 {
        // Flip `need` out-rows in (assign the atom class).
        let mut cand: Vec<(VarId, usize)> = atoms
            .iter()
            .copied()
            .filter(|&(v, c)| class_of(v) != c && !fixed.contains_key(&v))
            .collect();
        if (cand.len() as i64) < need {
            return Recognized::Infeasible;
        }
        rng.shuffle(&mut cand);
        for &(v, c) in cand.iter().take(need as usize) {
            repairs.push((v, c));
        }
    } else {
        // Flip `-need` in-rows out (assign any other class).
        let mut cand: Vec<(VarId, usize)> = atoms
            .iter()
            .copied()
            .filter(|&(v, c)| class_of(v) == c && !fixed.contains_key(&v))
            .collect();
        if (cand.len() as i64) < -need {
            return Recognized::Infeasible;
        }
        rng.shuffle(&mut cand);
        for &(v, c) in cand.iter().take((-need) as usize) {
            repairs.push((v, random_other_class(c, n_classes, rng)));
        }
    }
    Recognized::Solved(repairs)
}

/// Recognizer for `COUNT over PredEq join pairs = 0`: partition the
/// classes between the two relations with minimum flips (exact, by
/// enumerating the 2^C class subsets).
fn try_join_partition(
    cell: &CellProv,
    preds: &[usize],
    op: ValueOp,
    target: f64,
    n_classes: usize,
    rng: &mut RainRng,
) -> Recognized {
    if !(matches!(op, ValueOp::Eq | ValueOp::Le) && target.round() == 0.0) || n_classes > 16 {
        return Recognized::Unmatched;
    }
    let CellProv::Sum(s) = cell else {
        return Recognized::Unmatched;
    };
    let mut lefts: HashSet<VarId> = HashSet::new();
    let mut rights: HashSet<VarId> = HashSet::new();
    for (f, t) in &s.terms {
        match (f, t) {
            (BoolProv::PredEq { left, right }, AggTerm::One) => {
                lefts.insert(*left);
                rights.insert(*right);
            }
            _ => return Recognized::Unmatched,
        }
    }
    if !lefts.is_disjoint(&rights) {
        return Recognized::Unmatched; // self-join: not a 2-sided partition
    }
    // Class histograms per side.
    let mut lh = vec![0i64; n_classes];
    for &v in &lefts {
        lh[preds[v as usize]] += 1;
    }
    let mut rh = vec![0i64; n_classes];
    for &v in &rights {
        rh[preds[v as usize]] += 1;
    }
    // Cost of allowing class set S on the left: every left record outside
    // S flips, every right record inside S flips.
    let total_left: i64 = lh.iter().sum();
    let mut best_cost = i64::MAX;
    let mut best: Vec<u32> = Vec::new();
    for mask in 0u32..(1 << n_classes) {
        // Left records must have somewhere to go; same for right.
        if (mask == 0 && total_left > 0)
            || (mask == (1 << n_classes) - 1 && rh.iter().sum::<i64>() > 0)
        {
            continue;
        }
        let mut cost = 0;
        for c in 0..n_classes {
            if mask & (1 << c) != 0 {
                cost += rh[c];
            } else {
                cost += lh[c];
            }
        }
        match cost.cmp(&best_cost) {
            std::cmp::Ordering::Less => {
                best_cost = cost;
                best = vec![mask];
            }
            std::cmp::Ordering::Equal => best.push(mask),
            std::cmp::Ordering::Greater => {}
        }
    }
    if best.is_empty() {
        return Recognized::Infeasible;
    }
    // Arbitrary-optimum selection.
    let mask = best[rng.below(best.len())];
    let allowed_left: Vec<usize> = (0..n_classes).filter(|c| mask & (1 << c) != 0).collect();
    let allowed_right: Vec<usize> = (0..n_classes).filter(|c| mask & (1 << c) == 0).collect();
    let mut repairs = Vec::new();
    for &v in &lefts {
        if mask & (1 << preds[v as usize]) == 0 {
            repairs.push((v, allowed_left[rng.below(allowed_left.len())]));
        }
    }
    for &v in &rights {
        if mask & (1 << preds[v as usize]) != 0 {
            repairs.push((v, allowed_right[rng.below(allowed_right.len())]));
        }
    }
    Recognized::Solved(repairs)
}

/// Solve a system of `pred(l) ≠ pred(r)` requirements with minimum flips:
/// a minimum vertex cover on the bipartite conflict graph (König), then a
/// class assignment for the covered variables.
fn solve_pairs(
    pairs: &[(VarId, VarId)],
    preds: &[usize],
    assign: &mut BTreeMap<VarId, usize>,
    n_classes: usize,
    rng: &mut RainRng,
) -> Result<(), ()> {
    let class_of = |v: VarId, assign: &BTreeMap<VarId, usize>| {
        assign.get(&v).copied().unwrap_or(preds[v as usize])
    };
    // Pairs already satisfied (possibly via fixed assignments) drop out;
    // pairs with one side fixed constrain the free side directly.
    let mut live: Vec<(VarId, VarId)> = Vec::new();
    for &(l, r) in pairs {
        if l == r {
            return Err(()); // pred(v) ≠ pred(v) is unsatisfiable
        }
        let (lf, rf) = (assign.contains_key(&l), assign.contains_key(&r));
        match (lf, rf) {
            (true, true) => {
                if class_of(l, assign) == class_of(r, assign) {
                    return Err(());
                }
            }
            (true, false) => {
                if class_of(r, assign) == class_of(l, assign) {
                    let c = random_other_class(class_of(l, assign), n_classes, rng);
                    assign.insert(r, c);
                }
            }
            (false, true) => {
                if class_of(l, assign) == class_of(r, assign) {
                    let c = random_other_class(class_of(r, assign), n_classes, rng);
                    assign.insert(l, c);
                }
            }
            (false, false) => {
                if class_of(l, assign) == class_of(r, assign) {
                    live.push((l, r));
                }
            }
        }
    }
    if live.is_empty() {
        return Ok(());
    }
    // Index the live endpoints.
    let mut lidx: HashMap<VarId, usize> = HashMap::new();
    let mut ridx: HashMap<VarId, usize> = HashMap::new();
    let mut lvars = Vec::new();
    let mut rvars = Vec::new();
    for &(l, r) in &live {
        lidx.entry(l).or_insert_with(|| {
            lvars.push(l);
            lvars.len() - 1
        });
        ridx.entry(r).or_insert_with(|| {
            rvars.push(r);
            rvars.len() - 1
        });
    }
    let mut g = BipartiteGraph::new(lvars.len(), rvars.len());
    for &(l, r) in &live {
        g.add_edge(lidx[&l], ridx[&r]);
    }
    let (lc, rc) = konig_min_vertex_cover(&g);
    let covered: Vec<VarId> = lc
        .into_iter()
        .map(|i| lvars[i])
        .chain(rc.into_iter().map(|i| rvars[i]))
        .collect();
    // Adjacency over live pairs for conflict-free class choice.
    let mut adj: HashMap<VarId, Vec<VarId>> = HashMap::new();
    for &(l, r) in &live {
        adj.entry(l).or_default().push(r);
        adj.entry(r).or_default().push(l);
    }
    for v in covered {
        let neighbors = adj.get(&v).cloned().unwrap_or_default();
        let forbidden: HashSet<usize> = neighbors.iter().map(|&u| class_of(u, assign)).collect();
        let choices: Vec<usize> = (0..n_classes)
            .filter(|c| !forbidden.contains(c) && *c != preds[v as usize])
            .collect();
        let class = if choices.is_empty() {
            random_other_class(preds[v as usize], n_classes, rng)
        } else {
            choices[rng.below(choices.len())]
        };
        assign.insert(v, class);
    }
    Ok(())
}

enum GenericOutcome {
    Solved(Vec<(VarId, usize)>),
    Timeout,
    Infeasible,
}

/// Tseitin-linearize the remaining complaints into a 0/1 ILP and run
/// branch & bound.
fn solve_generic(
    out: &QueryOutput,
    complaints: &[&Complaint],
    preds: &[usize],
    fixed: &BTreeMap<VarId, usize>,
    n_classes: usize,
    cfg: &SqlStepConfig,
) -> GenericOutcome {
    let mut encode_span = rain_obs::Span::enter("encode");
    let mut enc = Encoder {
        prob: IlpProblem::new(),
        tvar: HashMap::new(),
        vars_seen: Vec::new(),
        n_classes,
    };
    // Gather constraints per complaint.
    for c in complaints {
        match c {
            Complaint::Value {
                row,
                agg,
                op,
                target,
            } => {
                let Some(cell) = out.agg_cells.get(*row).and_then(|r| r.get(*agg)) else {
                    return GenericOutcome::Infeasible;
                };
                let sense = match op {
                    ValueOp::Eq => Sense::Eq,
                    ValueOp::Le => Sense::Le,
                    ValueOp::Ge => Sense::Ge,
                };
                match cell {
                    CellProv::Sum(s) => {
                        let mut terms = Vec::new();
                        let mut konst = 0.0;
                        for (f, t) in &s.terms {
                            let weight = match t {
                                AggTerm::One => 1.0,
                                AggTerm::Const(v) => *v,
                                // Prediction-valued terms would need a
                                // per-class weighted encoding; unsupported.
                                AggTerm::PredValue(_) | AggTerm::ScaledPred { .. } => {
                                    return GenericOutcome::Timeout;
                                }
                            };
                            let e = enc.encode_bool(f);
                            for (v, a) in e.terms {
                                terms.push((v, a * weight));
                            }
                            konst += e.konst * weight;
                        }
                        enc.prob
                            .add_constraint(Constraint::new(terms, sense, target - konst));
                    }
                    _ => return GenericOutcome::Timeout, // ratio cells: unsupported
                }
            }
            Complaint::TupleDelete { row } => {
                let Some(prov) = out.row_prov.get(*row) else {
                    continue;
                };
                let e = enc.encode_bool(prov);
                enc.prob
                    .add_constraint(Constraint::new(e.terms, Sense::Eq, -e.konst));
            }
            // Join-delete and labeled predictions are handled upstream.
            Complaint::JoinDelete { .. } | Complaint::PredictionIs { .. } => {}
        }
        if enc.prob.n_vars() > cfg.max_ilp_vars {
            return GenericOutcome::Timeout;
        }
    }
    // Fixed assignments.
    for (&v, &c) in fixed {
        if enc.tvar.contains_key(&(v, 0)) || enc.vars_seen.contains(&v) {
            let tv = enc.tvar_of(v, c);
            enc.prob
                .add_constraint(Constraint::new(vec![(tv, 1.0)], Sense::Eq, 1.0));
        }
    }
    // Objective: minimize flips ⇔ maximize Σ t[v][r_v].
    let seen = enc.vars_seen.clone();
    for &v in &seen {
        let tv = enc.tvar_of(v, preds[v as usize]);
        enc.prob.objective[tv] -= 1.0;
    }
    encode_span.add("ilp_vars", enc.prob.n_vars() as u64);
    drop(encode_span);
    let _solve = rain_obs::Span::enter("solve");
    match solve_ilp(
        &enc.prob,
        &BbConfig {
            seed: cfg.seed,
            ..cfg.bb.clone()
        },
    ) {
        IlpOutcome::Optimal(sol) => {
            let mut assign = Vec::new();
            for &v in &seen {
                for c in 0..n_classes {
                    if let Some(&tv) = enc.tvar.get(&(v, c)) {
                        if sol.x[tv] {
                            assign.push((v, c));
                        }
                    }
                }
            }
            GenericOutcome::Solved(assign)
        }
        IlpOutcome::Infeasible => GenericOutcome::Infeasible,
        IlpOutcome::Budget(_) => GenericOutcome::Timeout,
    }
}

/// A linear expression `Σ aᵢxᵢ + konst` over ILP variables.
struct LinExpr {
    terms: Vec<(usize, f64)>,
    konst: f64,
}

struct Encoder {
    prob: IlpProblem,
    tvar: HashMap<(VarId, usize), usize>,
    vars_seen: Vec<VarId>,
    n_classes: usize,
}

impl Encoder {
    /// The ILP variable for `pred(v) = class`, creating the whole
    /// one-hot block (with its assignment constraint) on first sight.
    fn tvar_of(&mut self, v: VarId, class: usize) -> usize {
        if let Some(&t) = self.tvar.get(&(v, class)) {
            return t;
        }
        let mut block = Vec::with_capacity(self.n_classes);
        for c in 0..self.n_classes {
            let t = self.prob.add_var(0.0);
            self.tvar.insert((v, c), t);
            block.push((t, 1.0));
        }
        self.vars_seen.push(v);
        self.prob
            .add_constraint(Constraint::new(block, Sense::Eq, 1.0));
        self.tvar[&(v, class)]
    }

    /// Reduce an expression to a single 0/1 variable, adding an aux
    /// equality when needed.
    fn as_var(&mut self, e: LinExpr) -> usize {
        if e.terms.len() == 1 && e.terms[0].1 == 1.0 && e.konst == 0.0 {
            return e.terms[0].0;
        }
        let u = self.prob.add_var(0.0);
        let mut terms = e.terms;
        terms.push((u, -1.0));
        self.prob
            .add_constraint(Constraint::new(terms, Sense::Eq, -e.konst));
        u
    }

    /// Tseitin encoding: a linear expression whose value equals the
    /// formula's truth value under the added constraints.
    fn encode_bool(&mut self, f: &BoolProv) -> LinExpr {
        match f {
            BoolProv::Const(b) => LinExpr {
                terms: vec![],
                konst: *b as u8 as f64,
            },
            BoolProv::PredIs { var, class } => {
                let t = self.tvar_of(*var, *class);
                LinExpr {
                    terms: vec![(t, 1.0)],
                    konst: 0.0,
                }
            }
            BoolProv::PredEq { left, right } => {
                // Σ_c AND(t_l_c, t_r_c): exactly-one blocks make the sum 0/1.
                let mut terms = Vec::with_capacity(self.n_classes);
                for c in 0..self.n_classes {
                    let tl = self.tvar_of(*left, c);
                    let tr = self.tvar_of(*right, c);
                    let z = self.prob.add_var(0.0);
                    self.prob.add_constraint(Constraint::new(
                        vec![(z, 1.0), (tl, -1.0)],
                        Sense::Le,
                        0.0,
                    ));
                    self.prob.add_constraint(Constraint::new(
                        vec![(z, 1.0), (tr, -1.0)],
                        Sense::Le,
                        0.0,
                    ));
                    self.prob.add_constraint(Constraint::new(
                        vec![(z, 1.0), (tl, -1.0), (tr, -1.0)],
                        Sense::Ge,
                        -1.0,
                    ));
                    terms.push((z, 1.0));
                }
                LinExpr { terms, konst: 0.0 }
            }
            BoolProv::Not(inner) => {
                let e = self.encode_bool(inner);
                LinExpr {
                    terms: e.terms.into_iter().map(|(v, a)| (v, -a)).collect(),
                    konst: 1.0 - e.konst,
                }
            }
            BoolProv::And(children) => {
                let vars: Vec<usize> = children
                    .iter()
                    .map(|ch| {
                        let e = self.encode_bool(ch);
                        self.as_var(e)
                    })
                    .collect();
                let z = self.prob.add_var(0.0);
                let k = vars.len() as f64;
                for &a in &vars {
                    self.prob.add_constraint(Constraint::new(
                        vec![(z, 1.0), (a, -1.0)],
                        Sense::Le,
                        0.0,
                    ));
                }
                let mut ge = vec![(z, 1.0)];
                ge.extend(vars.iter().map(|&a| (a, -1.0)));
                self.prob
                    .add_constraint(Constraint::new(ge, Sense::Ge, 1.0 - k));
                LinExpr {
                    terms: vec![(z, 1.0)],
                    konst: 0.0,
                }
            }
            BoolProv::Or(children) => {
                let vars: Vec<usize> = children
                    .iter()
                    .map(|ch| {
                        let e = self.encode_bool(ch);
                        self.as_var(e)
                    })
                    .collect();
                let z = self.prob.add_var(0.0);
                for &a in &vars {
                    self.prob.add_constraint(Constraint::new(
                        vec![(z, 1.0), (a, -1.0)],
                        Sense::Ge,
                        0.0,
                    ));
                }
                let mut le = vec![(z, 1.0)];
                le.extend(vars.iter().map(|&a| (a, -1.0)));
                self.prob
                    .add_constraint(Constraint::new(le, Sense::Le, 0.0));
                LinExpr {
                    terms: vec![(z, 1.0)],
                    konst: 0.0,
                }
            }
        }
    }
}
