//! Durable session mutations: pair every catalog change with a commitlog
//! record, and rebuild a [`DebugSession`] from disk on boot.
//!
//! The serving layer mutates a session in exactly four ways — create it,
//! register/replace a table, append rows, upload a training set — and
//! each helper here applies the in-memory mutation and (when the session
//! runs durably) appends the matching [`Record`] and commits, so the log
//! is never behind the state a client has been acknowledged. Debug runs
//! themselves never mutate session state
//! ([`DebugSession::run`] takes `&self`), so they need no records.
//!
//! [`recover`] is the inverse: replay snapshot + log tail
//! ([`SessionStore::recover`]), then turn the replayed parts back into a
//! live session. The model is rebuilt by a caller-supplied factory from
//! the verbatim session-creation spec (the wire layer passes its JSON
//! parser, keeping this crate independent of the wire format), and
//! snapshot-carried weights are applied on top — so recovered weights are
//! bit-identical even for models whose initialization is seeded.

use crate::driver::DebugSession;
use rain_linalg::Matrix;
use rain_model::{Classifier, Dataset};
use rain_sql::table::Table;
use rain_sql::{Database, TableId, TableVersion, Value};
use rain_storage::{Record, RecoveryStats, SessionStore, SnapshotState, StorageError};
use std::path::Path;

/// Turns a verbatim session-creation spec back into a model. The wire
/// layer passes its JSON parser, keeping this crate independent of the
/// wire format.
pub type ModelFactory = dyn Fn(&str) -> Result<Box<dyn Classifier>, String>;

/// A session rebuilt from a data directory.
pub struct Recovered {
    /// The live session: catalog, training set, model (weights applied).
    pub sess: DebugSession,
    /// Verbatim creation spec the session was rebuilt from.
    pub spec: String,
    /// The store, reopened and ready for further appends.
    pub store: SessionStore,
    /// What recovery did (snapshot used, records replayed, timing).
    pub stats: RecoveryStats,
}

/// Open a store for a brand-new durable session and log its creation
/// spec as the first record.
pub fn create_store(dir: &Path, spec: &str) -> Result<SessionStore, StorageError> {
    let mut store = SessionStore::open(dir)?;
    store.append_commit(&Record::SessionMeta {
        spec: spec.to_string(),
    })?;
    Ok(store)
}

/// Register (or replace) a table, logging the mutation when durable.
pub fn register_table(
    db: &mut Database,
    store: Option<&mut SessionStore>,
    name: &str,
    table: Table,
) -> Result<(TableId, TableVersion), StorageError> {
    if let Some(store) = store {
        store.append_commit(&Record::RegisterTable {
            name: name.to_string(),
            table: table.clone(),
        })?;
    }
    let id = db.register(name, table);
    Ok((id, db.table_version(id)))
}

/// Why an append failed: the client's fault or the disk's.
#[derive(Debug)]
pub enum AppendError {
    /// The batch does not fit the table (arity, types, features) or the
    /// table does not exist — reject the request, nothing was logged.
    Invalid(String),
    /// The batch was valid but logging it failed.
    Storage(StorageError),
}

impl std::fmt::Display for AppendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AppendError::Invalid(msg) => write!(f, "invalid append: {msg}"),
            AppendError::Storage(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for AppendError {}

/// Append rows to a table, logging the mutation when durable. Validation
/// runs (and fails) before anything is logged or applied, so an invalid
/// batch leaves both the catalog and the log untouched.
pub fn append_rows(
    db: &mut Database,
    store: Option<&mut SessionStore>,
    name: &str,
    rows: Vec<Vec<Value>>,
    features: Option<Vec<Vec<f64>>>,
) -> Result<(TableId, TableVersion), AppendError> {
    let record = store.map(|s| {
        (
            s,
            Record::AppendRows {
                name: name.to_string(),
                rows: rows.clone(),
                features: features.clone(),
            },
        )
    });
    let (id, version) = db
        .append_to(name, rows, features)
        .map_err(AppendError::Invalid)?;
    if let Some((store, rec)) = record {
        store.append_commit(&rec).map_err(AppendError::Storage)?;
    }
    Ok((id, version))
}

/// Create a secondary index on a registered table's column, logging the
/// definition when durable. Validation runs (and fails) before anything
/// is logged, so a bad request leaves both catalog and log untouched.
/// Only the definition is logged — index *data* is rebuilt from the
/// table on recovery and on every later table mutation.
pub fn create_index(
    db: &mut Database,
    store: Option<&mut SessionStore>,
    name: &str,
    column: &str,
    kind: rain_sql::IndexKind,
) -> Result<(TableId, usize), AppendError> {
    let (id, count) = db
        .create_index(name, column, kind)
        .map_err(AppendError::Invalid)?;
    if let Some(store) = store {
        store
            .append_commit(&Record::CreateIndex {
                name: name.to_string(),
                column: column.to_string(),
                kind: kind.code(),
            })
            .map_err(AppendError::Storage)?;
    }
    Ok((id, count))
}

/// Replace the training set, logging the mutation when durable.
pub fn set_train(
    sess: &mut DebugSession,
    store: Option<&mut SessionStore>,
    data: Dataset,
) -> Result<(), StorageError> {
    if let Some(store) = store {
        store.append_commit(&Record::TrainSet { data: data.clone() })?;
    }
    sess.train = data;
    Ok(())
}

/// Assemble the full snapshot state of a session.
pub fn snapshot_state(sess: &DebugSession, spec: &str) -> SnapshotState {
    SnapshotState {
        spec: spec.to_string(),
        params: sess.model.params().to_vec(),
        train: sess.train.clone(),
        tables: sess
            .db
            .entries()
            .map(|e| (e.name.clone(), e.version, e.table.clone()))
            .collect(),
        indexes: sess
            .db
            .entries()
            .flat_map(|e| {
                e.indexes
                    .iter()
                    .map(|ix| (e.name.clone(), ix.column.clone(), ix.kind.code()))
            })
            .collect(),
    }
}

/// Cut a snapshot if enough log accumulated behind the last one (the
/// store's policy decides). Returns whether one was cut.
pub fn maybe_snapshot(
    sess: &DebugSession,
    store: &mut SessionStore,
    spec: &str,
) -> Result<bool, StorageError> {
    store.maybe_snapshot(|| snapshot_state(sess, spec))
}

/// Rebuild a session from its data directory. `factory` turns the
/// verbatim creation spec back into a model (the wire layer passes the
/// same parser that built the original); snapshot-carried weights are
/// applied on top when present.
pub fn recover(dir: &Path, factory: &ModelFactory) -> Result<Recovered, StorageError> {
    let mut store = SessionStore::open(dir)?;
    let state = store.recover()?;
    let spec = state.spec.ok_or_else(|| {
        StorageError::Corrupt(format!(
            "{}: no session meta record survived; cannot rebuild the model",
            dir.display()
        ))
    })?;
    let mut model = factory(&spec)
        .map_err(|e| StorageError::Corrupt(format!("session spec does not parse: {e}")))?;
    if let Some(params) = state.params {
        if params.len() != model.n_params() {
            return Err(StorageError::Corrupt(format!(
                "recovered {} params for a model with {}",
                params.len(),
                model.n_params()
            )));
        }
        model.set_params(&params);
    }
    let train = state.train.unwrap_or_else(|| {
        Dataset::new(
            Matrix::zeros(0, model.dim()),
            Vec::new(),
            model.n_classes().max(2),
        )
    });
    Ok(Recovered {
        sess: DebugSession::new(state.db, train, model),
        spec,
        store,
        stats: state.stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rain_model::LogisticRegression;
    use rain_sql::table::{ColType, Column, Schema};
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "rain-durable-test-{}-{tag}-{n}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn ints(vals: Vec<i64>) -> Table {
        Table::from_columns(Schema::new(&[("x", ColType::Int)]), vec![Column::Int(vals)])
    }

    fn factory(dim: usize) -> impl Fn(&str) -> Result<Box<dyn Classifier>, String> {
        move |_spec: &str| Ok(Box::new(LogisticRegression::new(dim, 0.01)) as Box<dyn Classifier>)
    }

    #[test]
    fn durable_mutations_recover_bit_identically() {
        let dir = temp_dir("roundtrip");
        let spec = "{\"model\":{\"kind\":\"logistic\",\"dim\":2}}";
        {
            let mut store = create_store(&dir, spec).unwrap();
            let mut sess = DebugSession::new(
                Database::new(),
                Dataset::new(Matrix::zeros(0, 2), Vec::new(), 2),
                Box::new(LogisticRegression::new(2, 0.01)),
            );
            register_table(&mut sess.db, Some(&mut store), "t", ints(vec![1, 2])).unwrap();
            create_index(
                &mut sess.db,
                Some(&mut store),
                "t",
                "x",
                rain_sql::IndexKind::Hash,
            )
            .unwrap();
            append_rows(
                &mut sess.db,
                Some(&mut store),
                "t",
                vec![vec![Value::Int(3)]],
                None,
            )
            .unwrap();
            let train = Dataset::with_ids(
                Matrix::from_vec(2, 2, vec![0.5, -0.5, 1.5, 2.5]),
                vec![0, 1],
                vec![11, 22],
                2,
            );
            set_train(&mut sess, Some(&mut store), train).unwrap();
            // Perturb the weights so recovery has something nontrivial to
            // restore via snapshot.
            sess.model.set_params(&[0.125, -3.5, 0.75]);
            store.snapshot(&snapshot_state(&sess, spec)).unwrap();
        }
        let rec = recover(&dir, &factory(2)).unwrap();
        assert_eq!(rec.spec, spec);
        assert_eq!(rec.sess.model.params(), &[0.125, -3.5, 0.75]);
        assert_eq!(rec.sess.train.ids(), &[11, 22]);
        let id = rec.sess.db.resolve("t").unwrap();
        assert_eq!(
            rec.sess.db.table_version(id),
            TableVersion { gen: 0, delta: 1 }
        );
        assert_eq!(rec.sess.db.table_by_id(id).n_rows(), 3);
        let ix = rec
            .sess
            .db
            .index_on(id, 0, rain_sql::IndexKind::Hash)
            .expect("index definition recovered");
        assert_eq!(ix.len(), 3, "index rebuilt over all recovered rows");
        assert!(rec.stats.snapshot_offset.is_some());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn invalid_append_logs_nothing() {
        let dir = temp_dir("invalid");
        let mut store = create_store(&dir, "{}").unwrap();
        let mut db = Database::new();
        register_table(&mut db, Some(&mut store), "t", ints(vec![1])).unwrap();
        let records_before = store.log_records();
        let err = append_rows(
            &mut db,
            Some(&mut store),
            "t",
            vec![vec![Value::Str("bad".into())]],
            None,
        )
        .unwrap_err();
        assert!(matches!(err, AppendError::Invalid(_)));
        assert_eq!(store.log_records(), records_before);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recovery_without_meta_is_an_error() {
        let dir = temp_dir("nometa");
        {
            let mut store = SessionStore::open(&dir).unwrap();
            store
                .append_commit(&Record::RegisterTable {
                    name: "t".into(),
                    table: ints(vec![1]),
                })
                .unwrap();
        }
        assert!(matches!(
            recover(&dir, &factory(2)),
            Err(StorageError::Corrupt(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recovery_without_snapshot_rebuilds_from_log_alone() {
        let dir = temp_dir("lognosnap");
        {
            let mut store = create_store(&dir, "{}").unwrap();
            let mut db = Database::new();
            register_table(&mut db, Some(&mut store), "t", ints(vec![5])).unwrap();
        }
        let rec = recover(&dir, &factory(2)).unwrap();
        assert!(rec.stats.snapshot_offset.is_none());
        assert_eq!(rec.stats.replayed_records, 2);
        assert!(rec.sess.train.is_empty(), "no upload means empty train");
        assert_eq!(rec.sess.db.table("t").unwrap().n_rows(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
