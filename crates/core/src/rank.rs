//! The four ranking methods of §6.1.1: `Loss`, `InfLoss`, `TwoStep`, and
//! `Holistic`, behind one interface.
//!
//! Every method sees the same context — the trained model, the current
//! training set, and the debug-mode query outputs — and produces a ranked
//! list of training records (most-suspect first). The timing split matches
//! Figure 5's cost model: **encode** covers building the complaint
//! encoding `∇q` (for TwoStep this includes the ILP), **rank** covers the
//! inverse-Hessian solve and per-record scoring.

use crate::complaint::QuerySpec;
use crate::qfunc::{prob_grad_to_theta, probs_for, q_value_and_prob_grad};
use crate::twostep::{sql_step, SqlStep, SqlStepConfig};
use rain_influence::{
    inverse_hvp, rank_descending, score_records, self_influence_scores, InfluenceConfig,
    RankedRecord,
};
use rain_model::{Classifier, Dataset};
use rain_sql::{Database, QueryOutput};
use std::time::Instant;

/// Which debugging method to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Baseline: rank by training loss, highest first (§6.1.1).
    Loss,
    /// Baseline: rank by self-influence, most loss-increasing first
    /// (Koh & Liang's loss-based debugging; very slow by design).
    InfLoss,
    /// The two-step approach of §5.2 (ILP SQL step + influence).
    TwoStep,
    /// The holistic relaxation approach of §5.3.
    Holistic,
    /// The §5.1 optimizer heuristic: TwoStep when the complaints pin the
    /// prediction fixes uniquely, Holistic otherwise.
    Auto,
}

impl Method {
    /// Resolve `Auto` against the queries' complaints (§5.1): TwoStep is
    /// preferred only when every complaint is an unambiguous labeled
    /// prediction; anything aggregate- or tuple-shaped goes Holistic.
    pub fn resolve(self, queries: &[QuerySpec]) -> Method {
        match self {
            Method::Auto => {
                let unambiguous = queries.iter().all(|q| {
                    q.complaints
                        .iter()
                        .all(|c| matches!(c, crate::complaint::Complaint::PredictionIs { .. }))
                });
                if unambiguous {
                    Method::TwoStep
                } else {
                    Method::Holistic
                }
            }
            other => other,
        }
    }

    /// Display name used by the experiment harness.
    pub fn name(self) -> &'static str {
        match self {
            Method::Loss => "Loss",
            Method::InfLoss => "InfLoss",
            Method::TwoStep => "TwoStep",
            Method::Holistic => "Holistic",
            Method::Auto => "Auto",
        }
    }
}

/// Everything a ranker needs for one iteration.
pub struct RankContext<'a> {
    /// The queried database.
    pub db: &'a Database,
    /// The currently trained model.
    pub model: &'a dyn Classifier,
    /// The current training set.
    pub train: &'a Dataset,
    /// Debug-mode outputs, one per query.
    pub outputs: &'a [QueryOutput],
    /// The queries with their complaints.
    pub queries: &'a [QuerySpec],
    /// Influence-engine settings.
    pub influence: &'a InfluenceConfig,
    /// TwoStep SQL-step settings.
    pub sqlstep: &'a SqlStepConfig,
}

/// A ranking plus the encode/rank timing split of Figure 5.
#[derive(Debug, Clone)]
pub struct Ranking {
    /// Records, most-suspect first.
    pub records: Vec<RankedRecord>,
    /// Seconds spent building the complaint encoding (ILP, relaxation,
    /// ∇q assembly).
    pub encode_s: f64,
    /// Seconds spent in the influence solve + scoring (or loss scan).
    pub rank_s: f64,
}

/// Why a method could not produce a ranking.
#[derive(Debug, Clone, PartialEq)]
pub enum RankError {
    /// TwoStep's ILP hit its budget (paper: "TwoStep does not solve the
    /// ILP within 30 minutes").
    IlpTimeout,
    /// The complaints are unsatisfiable by any prediction assignment.
    Infeasible,
}

impl std::fmt::Display for RankError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RankError::IlpTimeout => write!(f, "ILP solver exceeded its budget"),
            RankError::Infeasible => write!(f, "complaints are unsatisfiable"),
        }
    }
}

/// Produce a ranking of the current training records with `method`.
pub fn rank(method: Method, ctx: &RankContext<'_>) -> Result<Ranking, RankError> {
    match method.resolve(ctx.queries) {
        Method::Loss => Ok(rank_loss(ctx)),
        Method::InfLoss => Ok(rank_infloss(ctx)),
        Method::Holistic => Ok(rank_holistic(ctx)),
        Method::TwoStep => rank_twostep(ctx),
        Method::Auto => unreachable!("resolved above"),
    }
}

fn rank_loss(ctx: &RankContext<'_>) -> Ranking {
    let t0 = Instant::now();
    let scores: Vec<f64> = (0..ctx.train.len())
        .map(|i| ctx.model.example_loss(ctx.train.x(i), ctx.train.y(i)))
        .collect();
    Ranking {
        records: rank_descending(ctx.train, &scores),
        encode_s: 0.0,
        rank_s: t0.elapsed().as_secs_f64(),
    }
}

fn rank_infloss(ctx: &RankContext<'_>) -> Ranking {
    let t0 = Instant::now();
    // InfLoss ranks most-negative self-influence first, i.e. descending
    // by the negated score.
    let scores: Vec<f64> = self_influence_scores(ctx.model, ctx.train, ctx.influence)
        .into_iter()
        .map(|s| -s)
        .collect();
    Ranking {
        records: rank_descending(ctx.train, &scores),
        encode_s: 0.0,
        rank_s: t0.elapsed().as_secs_f64(),
    }
}

fn rank_holistic(ctx: &RankContext<'_>) -> Ranking {
    let t0 = Instant::now();
    // Build ∇θ q summed over queries (multi-complaint support, §3.2).
    let mut grad_q = vec![0.0; ctx.model.n_params()];
    for (out, query) in ctx.outputs.iter().zip(ctx.queries) {
        let probs = probs_for(ctx.db, out, ctx.model);
        let (_, pg) = q_value_and_prob_grad(out, &query.complaints, &probs);
        let g = prob_grad_to_theta(ctx.db, out, ctx.model, &pg);
        rain_linalg::vecops::axpy(1.0, &g, &mut grad_q);
    }
    let encode_s = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let records = influence_rank(ctx, &grad_q);
    Ranking {
        records,
        encode_s,
        rank_s: t1.elapsed().as_secs_f64(),
    }
}

fn rank_twostep(ctx: &RankContext<'_>) -> Result<Ranking, RankError> {
    let t0 = Instant::now();
    // SQL step per query, then q = -Σ p_target(x) over the repairs.
    let mut grad_q = vec![0.0; ctx.model.n_params()];
    for (out, query) in ctx.outputs.iter().zip(ctx.queries) {
        let repairs = match sql_step(out, &query.complaints, ctx.model.n_classes(), ctx.sqlstep) {
            SqlStep::Repairs(r) => r,
            SqlStep::Timeout => return Err(RankError::IlpTimeout),
            SqlStep::Infeasible => return Err(RankError::Infeasible),
        };
        for (var, class) in repairs {
            let info = out.predvars.info(var);
            let table = ctx.db.table(&info.table).expect("predvar table");
            let x = table.feature_row(info.row).expect("predvar features");
            // ∇θ q += -∇θ p_class(x).
            let gp = ctx.model.grad_proba(x, class);
            rain_linalg::vecops::axpy(-1.0, &gp, &mut grad_q);
        }
    }
    let encode_s = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let records = influence_rank(ctx, &grad_q);
    Ok(Ranking {
        records,
        encode_s,
        rank_s: t1.elapsed().as_secs_f64(),
    })
}

/// Shared influence pipeline: solve `(H+δI)s = ∇q`, score every training
/// record, rank descending.
fn influence_rank(ctx: &RankContext<'_>, grad_q: &[f64]) -> Vec<RankedRecord> {
    let solved = inverse_hvp(ctx.model, ctx.train, grad_q, ctx.influence);
    let scores = score_records(ctx.model, ctx.train, &solved.x, ctx.influence.threads);
    rank_descending(ctx.train, &scores)
}
