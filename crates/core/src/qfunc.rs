//! Encoding complaints as differentiable functions `q(θ)` (paper §5.3.2)
//! and chaining their gradients back to model parameters.
//!
//! For Holistic, each complaint becomes a term over the *relaxed*
//! provenance of its target cell:
//!
//! - value complaint `t[a] = X`  →  `(rq(θ) − X)²`
//! - tuple complaint             →  `rq(θ)²`  (membership should be 0)
//! - inequality complaints       →  treated as the equality while violated,
//!   ignored once satisfied (the train–rank–fix scheme of §5.3.2)
//! - prediction complaint        →  `(p_class(x) − 1)²`
//!
//! Multiple complaints (possibly across queries) sum their terms. The
//! gradient flows  `∂q/∂p[var][class]`  (reverse-mode over the provenance
//! DAG, from `rain-sql`)  →  `∇θ p_class(x_var)`  (from `rain-model`)  →
//! `∇θ q`, which is what the influence engine inverts.

use crate::complaint::{Complaint, ValueOp};
use rain_model::Classifier;
use rain_sql::{CellProv, Database, ProbGrad, Probs, QueryOutput};

/// Class probabilities for every prediction variable of a query output.
pub fn probs_for(db: &Database, out: &QueryOutput, model: &dyn Classifier) -> Probs {
    let p = out
        .predvars
        .infos()
        .iter()
        .map(|info| {
            let table = db.table(&info.table).expect("predvar table exists");
            let x = table.feature_row(info.row).expect("predvar features exist");
            model.predict_proba(x)
        })
        .collect();
    Probs { p }
}

/// Map a gradient over variable probabilities into parameter space:
/// `∇θ q = Σ_{var,class} (∂q/∂p[var][class]) · ∇θ p_class(x_var)`.
pub fn prob_grad_to_theta(
    db: &Database,
    out: &QueryOutput,
    model: &dyn Classifier,
    pg: &ProbGrad,
) -> Vec<f64> {
    let mut grad = vec![0.0; model.n_params()];
    for (&var, gs) in &pg.g {
        let info = out.predvars.info(var);
        let table = db.table(&info.table).expect("predvar table exists");
        let x = table.feature_row(info.row).expect("predvar features exist");
        for (class, &g) in gs.iter().enumerate() {
            if g != 0.0 {
                let gp = model.grad_proba(x, class);
                rain_linalg::vecops::axpy(g, &gp, &mut grad);
            }
        }
    }
    grad
}

/// The value and probability-space gradient of the combined `q` for one
/// query's complaints. Satisfied inequality complaints contribute nothing.
pub fn q_value_and_prob_grad(
    out: &QueryOutput,
    complaints: &[Complaint],
    probs: &Probs,
) -> (f64, ProbGrad) {
    let mut value = 0.0;
    let mut grad = ProbGrad::default();
    for c in complaints {
        match c {
            Complaint::Value {
                row,
                agg,
                op,
                target,
            } => {
                let Some(cell) = cell_of(out, *row, *agg) else {
                    continue;
                };
                let active = match op {
                    ValueOp::Eq => true,
                    // Treat as equality while violated (§5.3.2); the
                    // *concrete* value decides violation.
                    ValueOp::Le | ValueOp::Ge => !c.satisfied(out),
                };
                if active {
                    // The residual comes from the *concrete* output value
                    // the user complained about, not the relaxed one: an
                    // under-confident model can place the relaxed value on
                    // the other side of the target, and a purely-relaxed
                    // residual would then push the fix in the wrong
                    // direction. The relaxed polynomial still supplies the
                    // gradient direction through the probabilities.
                    let concrete = concrete_cell(out, *row, *agg)
                        .unwrap_or_else(|| cell.eval_discrete(out.predvars.preds()));
                    value += (concrete - target) * (concrete - target);
                    cell.accumulate_grad(probs, 2.0 * (concrete - target), &mut grad);
                }
            }
            Complaint::TupleDelete { row } => {
                let Some(prov) = out.row_prov.get(*row) else {
                    continue;
                };
                let v = prov.eval_relaxed(probs);
                value += v * v;
                prov.accumulate_grad(probs, 2.0 * v, &mut grad);
            }
            Complaint::JoinDelete { left, right } => {
                let (Some(lv), Some(rv)) = (
                    out.predvars.lookup(&left.0, left.1),
                    out.predvars.lookup(&right.0, right.1),
                ) else {
                    continue;
                };
                // Membership formula of the pair: predict(l) = predict(r).
                let prov = rain_sql::BoolProv::PredEq {
                    left: lv,
                    right: rv,
                };
                let v = prov.eval_relaxed(probs);
                value += v * v;
                prov.accumulate_grad(probs, 2.0 * v, &mut grad);
            }
            Complaint::PredictionIs { table, row, class } => {
                let Some(var) = out.predvars.lookup(table, *row) else {
                    continue;
                };
                let p = probs.p[var as usize][*class];
                value += (p - 1.0) * (p - 1.0);
                let n = probs.p[var as usize].len();
                let mut one = ProbGrad::default();
                one.g.entry(var).or_insert_with(|| vec![0.0; n])[*class] = 1.0;
                grad.add_scaled(&one, 2.0 * (p - 1.0));
            }
        }
    }
    (value, grad)
}

/// The provenance cell targeted by a value complaint.
pub fn cell_of(out: &QueryOutput, row: usize, agg: usize) -> Option<&CellProv> {
    out.agg_cells.get(row).and_then(|cells| cells.get(agg))
}

/// The concrete numeric value of an aggregate output cell.
pub fn concrete_cell(out: &QueryOutput, row: usize, agg: usize) -> Option<f64> {
    let col = out.n_key_cols + agg;
    if row >= out.table.n_rows() || col >= out.table.schema().len() {
        return None;
    }
    match out.table.value(row, col) {
        rain_sql::Value::Int(v) => Some(v as f64),
        rain_sql::Value::Float(v) => Some(v),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complaint::Complaint;
    use rain_linalg::{vecops, Matrix};
    use rain_model::{Classifier, LogisticRegression};
    use rain_sql::table::{ColType, Column, Schema, Table};
    use rain_sql::{run_query, ExecOptions};

    fn setup() -> (Database, LogisticRegression) {
        let t = Table::from_columns(
            Schema::new(&[("id", ColType::Int)]),
            vec![Column::Int(vec![0, 1, 2, 3])],
        )
        .with_features(Matrix::from_rows(&[&[2.0], &[0.5], &[-0.5], &[-2.0]]));
        let mut db = Database::new();
        db.register("t", t);
        let mut m = LogisticRegression::new(1, 0.0);
        m.set_params(&[1.0, 0.0]); // soft sigmoid: probabilities in (0,1)
        (db, m)
    }

    #[test]
    fn probs_align_with_registry() {
        let (db, m) = setup();
        let out = run_query(
            &db,
            &m,
            "SELECT COUNT(*) FROM t WHERE predict(*) = 1",
            ExecOptions::debug(),
        )
        .unwrap();
        let probs = probs_for(&db, &out, &m);
        assert_eq!(probs.n_vars(), 4);
        for (v, info) in out.predvars.infos().iter().enumerate() {
            let x = db
                .table(&info.table)
                .unwrap()
                .feature_row(info.row)
                .unwrap()
                .to_vec();
            assert_eq!(probs.p[v], m.predict_proba(&x));
        }
    }

    #[test]
    fn q_gradient_matches_finite_differences_through_model() {
        // The value-complaint gradient is that of the surrogate
        // q̃(θ) = 2·(concrete − X)·v_relaxed(θ), where the concrete
        // residual is held fixed for the iteration; check ∇θ against
        // central differences of v_relaxed through the model.
        let (db, mut m) = setup();
        let sql = "SELECT COUNT(*) FROM t WHERE predict(*) = 1";
        let out = run_query(&db, &m, sql, ExecOptions::debug()).unwrap();
        let complaints = vec![Complaint::scalar_eq(3.0)];
        let concrete = concrete_cell(&out, 0, 0).unwrap();
        let target = 3.0;

        let v_at = |model: &LogisticRegression| -> f64 {
            let probs = probs_for(&db, &out, model);
            cell_of(&out, 0, 0).unwrap().eval_relaxed(&probs)
        };

        let probs = probs_for(&db, &out, &m);
        let (_, pg) = q_value_and_prob_grad(&out, &complaints, &probs);
        let grad = prob_grad_to_theta(&db, &out, &m, &pg);

        let theta = m.params().to_vec();
        let eps = 1e-6;
        for j in 0..theta.len() {
            let mut tp = theta.clone();
            tp[j] += eps;
            m.set_params(&tp);
            let up = v_at(&m);
            tp[j] -= 2.0 * eps;
            m.set_params(&tp);
            let dn = v_at(&m);
            m.set_params(&theta);
            let fd = 2.0 * (concrete - target) * (up - dn) / (2.0 * eps);
            assert!(
                (fd - grad[j]).abs() < 1e-6,
                "param {j}: fd {fd} vs {}",
                grad[j]
            );
        }
    }

    #[test]
    fn satisfied_inequality_contributes_nothing() {
        let (db, m) = setup();
        let out = run_query(
            &db,
            &m,
            "SELECT COUNT(*) FROM t WHERE predict(*) = 1",
            ExecOptions::debug(),
        )
        .unwrap();
        // Concrete count is 2; "should be ≤ 3" is satisfied → inactive.
        let probs = probs_for(&db, &out, &m);
        let (v, g) = q_value_and_prob_grad(
            &out,
            &[Complaint::Value {
                row: 0,
                agg: 0,
                op: ValueOp::Le,
                target: 3.0,
            }],
            &probs,
        );
        assert_eq!(v, 0.0);
        assert!(g.g.is_empty());
        // "should be ≥ 3" is violated → active, positive value.
        let (v, g) = q_value_and_prob_grad(
            &out,
            &[Complaint::Value {
                row: 0,
                agg: 0,
                op: ValueOp::Ge,
                target: 3.0,
            }],
            &probs,
        );
        assert!(v > 0.0);
        assert!(!g.g.is_empty());
    }

    #[test]
    fn multiple_complaints_sum() {
        let (db, m) = setup();
        let out = run_query(
            &db,
            &m,
            "SELECT COUNT(*) FROM t WHERE predict(*) = 1",
            ExecOptions::debug(),
        )
        .unwrap();
        let probs = probs_for(&db, &out, &m);
        let (v1, _) = q_value_and_prob_grad(&out, &[Complaint::scalar_eq(3.0)], &probs);
        let (v2, _) = q_value_and_prob_grad(&out, &[Complaint::prediction_is("t", 1, 0)], &probs);
        let (sum, _) = q_value_and_prob_grad(
            &out,
            &[
                Complaint::scalar_eq(3.0),
                Complaint::prediction_is("t", 1, 0),
            ],
            &probs,
        );
        assert!((sum - (v1 + v2)).abs() < 1e-12);
    }

    #[test]
    fn tuple_complaint_gradient_pushes_membership_down() {
        let (db, m) = setup();
        let out = run_query(
            &db,
            &m,
            "SELECT id FROM t WHERE predict(*) = 1",
            ExecOptions::debug(),
        )
        .unwrap();
        assert!(out.table.n_rows() >= 1);
        let probs = probs_for(&db, &out, &m);
        let (v, pg) = q_value_and_prob_grad(&out, &[Complaint::tuple_delete(0)], &probs);
        assert!(v > 0.0);
        let grad = prob_grad_to_theta(&db, &out, &m, &pg);
        assert!(vecops::norm2(&grad) > 0.0);
    }
}
