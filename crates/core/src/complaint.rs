//! The complaint model (paper §3.2, Definition 3.1).
//!
//! A complaint is a boolean constraint over a query's output (or over an
//! intermediate result — here, directly over the prediction view). Value
//! complaints say an output attribute should be `=`, `≤`, or `≥` some
//! value; tuple complaints say an output tuple should not exist;
//! prediction complaints label an individual model inference (the
//! "direct complaints over the model mispredictions" of §6.4).

use rain_sql::{QueryOutput, Value};

/// Comparison direction of a value complaint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueOp {
    /// The output value should equal the target.
    Eq,
    /// The output value should be at most the target.
    Le,
    /// The output value should be at least the target.
    Ge,
}

/// A complaint against one query's output.
#[derive(Debug, Clone, PartialEq)]
pub enum Complaint {
    /// Value complaint on an aggregate output cell.
    Value {
        /// Output row index (in the query's deterministic output order).
        row: usize,
        /// Aggregate index within the row (0 for the first aggregate).
        agg: usize,
        /// Comparison direction.
        op: ValueOp,
        /// The value the user believes is correct.
        target: f64,
    },
    /// Tuple complaint: output row `row` should not exist.
    ///
    /// Row indexes refer to the output of the *current* execution; for
    /// complaints that must stay anchored across train–rank–fix iterations
    /// (join outputs shift as the model changes) prefer
    /// [`Complaint::JoinDelete`], which is anchored to the tuple's lineage.
    TupleDelete {
        /// Output row index.
        row: usize,
    },
    /// Lineage-anchored join tuple complaint: the records `left` and
    /// `right` should not join, i.e. `predict(left) ≠ predict(right)` —
    /// what a tuple complaint over a prediction-join output row means once
    /// traced to its provenance.
    JoinDelete {
        /// `(table, row)` of the left join input.
        left: (String, usize),
        /// `(table, row)` of the right join input.
        right: (String, usize),
    },
    /// Intermediate-result complaint: the model's prediction on a queried
    /// record should be `class` (a labeled misprediction).
    PredictionIs {
        /// Catalog table holding the record.
        table: String,
        /// Row index within that table.
        row: usize,
        /// The correct class according to the user.
        class: usize,
    },
}

impl Complaint {
    /// Equality value complaint on the single aggregate of row 0 — the
    /// common "the count should be X" case.
    pub fn scalar_eq(target: f64) -> Complaint {
        Complaint::Value {
            row: 0,
            agg: 0,
            op: ValueOp::Eq,
            target,
        }
    }

    /// Equality value complaint on a `(row, agg)` cell.
    pub fn value_eq(row: usize, agg: usize, target: f64) -> Complaint {
        Complaint::Value {
            row,
            agg,
            op: ValueOp::Eq,
            target,
        }
    }

    /// Tuple-deletion complaint.
    pub fn tuple_delete(row: usize) -> Complaint {
        Complaint::TupleDelete { row }
    }

    /// Lineage-anchored join-deletion complaint.
    pub fn join_delete(
        left_table: &str,
        left_row: usize,
        right_table: &str,
        right_row: usize,
    ) -> Complaint {
        Complaint::JoinDelete {
            left: (left_table.into(), left_row),
            right: (right_table.into(), right_row),
        }
    }

    /// Prediction-view complaint.
    pub fn prediction_is(table: &str, row: usize, class: usize) -> Complaint {
        Complaint::PredictionIs {
            table: table.into(),
            row,
            class,
        }
    }

    /// Is this complaint currently satisfied by the query output?
    ///
    /// Unknown targets (rows/cells that do not exist, or predictions never
    /// materialized) count as violated for value/prediction complaints and
    /// as satisfied for tuple deletions (the tuple is indeed absent).
    pub fn satisfied(&self, out: &QueryOutput) -> bool {
        match self {
            Complaint::Value {
                row,
                agg,
                op,
                target,
            } => {
                let col = out.n_key_cols + agg;
                if *row >= out.table.n_rows() || col >= out.table.schema().len() {
                    return false;
                }
                let got = match out.table.value(*row, col) {
                    Value::Int(v) => v as f64,
                    Value::Float(v) => v,
                    _ => return false,
                };
                match op {
                    ValueOp::Eq => (got - target).abs() < 1e-9,
                    ValueOp::Le => got <= target + 1e-9,
                    ValueOp::Ge => got >= target - 1e-9,
                }
            }
            Complaint::TupleDelete { row } => *row >= out.table.n_rows(),
            Complaint::JoinDelete { left, right } => {
                let lv = out.predvars.lookup(&left.0, left.1);
                let rv = out.predvars.lookup(&right.0, right.1);
                match (lv, rv) {
                    (Some(l), Some(r)) => {
                        out.predvars.preds()[l as usize] != out.predvars.preds()[r as usize]
                    }
                    // If either record was never predicted, the pair
                    // cannot be in the join output.
                    _ => true,
                }
            }
            Complaint::PredictionIs { table, row, class } => out
                .predvars
                .lookup(table, *row)
                .is_some_and(|v| out.predvars.preds()[v as usize] == *class),
        }
    }
}

/// A query paired with the complaints raised against its output.
#[derive(Debug, Clone)]
pub struct QuerySpec {
    /// The SQL text.
    pub sql: String,
    /// Complaints against this query's output.
    pub complaints: Vec<Complaint>,
}

impl QuerySpec {
    /// A query with no complaints yet.
    pub fn new(sql: impl Into<String>) -> Self {
        QuerySpec {
            sql: sql.into(),
            complaints: Vec::new(),
        }
    }

    /// Attach a complaint (builder style).
    pub fn with_complaint(mut self, c: Complaint) -> Self {
        self.complaints.push(c);
        self
    }

    /// Attach many complaints.
    pub fn with_complaints(mut self, cs: impl IntoIterator<Item = Complaint>) -> Self {
        self.complaints.extend(cs);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rain_linalg::Matrix;
    use rain_model::{Classifier, LogisticRegression};
    use rain_sql::table::{ColType, Column, Schema, Table};
    use rain_sql::{run_query, Database, ExecOptions};

    fn setup() -> (Database, LogisticRegression) {
        let t = Table::from_columns(
            Schema::new(&[("id", ColType::Int)]),
            vec![Column::Int(vec![0, 1, 2])],
        )
        .with_features(Matrix::from_rows(&[&[1.0], &[1.0], &[-1.0]]));
        let mut db = Database::new();
        db.register("t", t);
        let mut m = LogisticRegression::new(1, 0.0);
        m.set_params(&[10.0, 0.0]);
        (db, m)
    }

    #[test]
    fn value_complaint_satisfaction() {
        let (db, m) = setup();
        let out = run_query(
            &db,
            &m,
            "SELECT COUNT(*) FROM t WHERE predict(*) = 1",
            ExecOptions::default(),
        )
        .unwrap();
        assert!(Complaint::scalar_eq(2.0).satisfied(&out));
        assert!(!Complaint::scalar_eq(3.0).satisfied(&out));
        assert!(Complaint::Value {
            row: 0,
            agg: 0,
            op: ValueOp::Le,
            target: 2.0
        }
        .satisfied(&out));
        assert!(Complaint::Value {
            row: 0,
            agg: 0,
            op: ValueOp::Ge,
            target: 3.0
        }
        .satisfied(&out)
        .eq(&false));
        // Out-of-range cell → violated.
        assert!(!Complaint::value_eq(5, 0, 1.0).satisfied(&out));
    }

    #[test]
    fn tuple_complaint_satisfaction() {
        let (db, m) = setup();
        let out = run_query(
            &db,
            &m,
            "SELECT id FROM t WHERE predict(*) = 1",
            ExecOptions::default(),
        )
        .unwrap();
        assert_eq!(out.table.n_rows(), 2);
        assert!(!Complaint::tuple_delete(0).satisfied(&out));
        // A row index beyond the output is trivially "deleted".
        assert!(Complaint::tuple_delete(9).satisfied(&out));
    }

    #[test]
    fn prediction_complaint_satisfaction() {
        let (db, m) = setup();
        let out = run_query(
            &db,
            &m,
            "SELECT COUNT(*) FROM t WHERE predict(*) = 1",
            ExecOptions::debug(),
        )
        .unwrap();
        assert!(Complaint::prediction_is("t", 0, 1).satisfied(&out));
        assert!(!Complaint::prediction_is("t", 0, 0).satisfied(&out));
        // Never-predicted rows are violated (nothing to check against).
        assert!(!Complaint::prediction_is("t", 99, 1).satisfied(&out));
    }

    #[test]
    fn query_spec_builder() {
        let q = QuerySpec::new("SELECT COUNT(*) FROM t")
            .with_complaint(Complaint::scalar_eq(5.0))
            .with_complaints([Complaint::tuple_delete(1)]);
        assert_eq!(q.complaints.len(), 2);
    }
}
