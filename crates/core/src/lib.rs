//! # Rain core: complaint-driven training data debugging for Query 2.0
//!
//! This crate is the paper's primary contribution: given a SQL query that
//! embeds model inference, a database, a training set, and user
//! *complaints* about the query's output, find the minimum set of training
//! records whose deletion would resolve the complaints (Definition 3.2).
//!
//! The pieces, mirroring Figure 2 of the paper:
//!
//! - [`complaint`] — value / tuple / prediction complaints and query specs.
//! - [`qfunc`] — complaints → differentiable `q(θ)` over relaxed
//!   provenance, with gradients chained through the model (Holistic's
//!   encoding, §5.3; also used by TwoStep's influence step).
//! - [`twostep`] — the ILP SQL step of §5.2 (presolve + Tseitin + branch
//!   and bound), producing marked mispredictions.
//! - [`rank`](mod@rank) — the four ranking methods (`Loss`, `InfLoss`, `TwoStep`,
//!   `Holistic`) plus the §5.1 `Auto` heuristic.
//! - [`driver`] — the train–rank–fix loop and reporting.
//! - [`durable`] — commitlog-backed session mutations and boot-time
//!   recovery (see `rain_storage`).
//! - [`metrics`] — recall@k and AUCCR (§6.1.5).
//!
//! ## Example: debugging a corrupted entity-resolution model
//!
//! ```
//! use rain_core::prelude::*;
//! use rain_data::dblp::DblpConfig;
//! use rain_data::flip_labels_where;
//! use rain_model::LogisticRegression;
//! use rain_sql::Database;
//!
//! // Workload with systematic corruption: 50% of match labels flipped.
//! let w = DblpConfig::small().generate(7);
//! let mut train = w.train.clone();
//! let truth = flip_labels_where(&mut train, |_, _, y| y == 1, 0.5, |_| 0, 7);
//!
//! let mut db = Database::new();
//! db.register("pairs", w.query_table());
//!
//! let session = DebugSession::new(
//!     db,
//!     train,
//!     Box::new(LogisticRegression::new(17, 0.01)),
//! )
//! .with_query(
//!     QuerySpec::new("SELECT COUNT(*) FROM pairs WHERE predict(*) = 1")
//!         .with_complaint(Complaint::scalar_eq(w.true_match_count() as f64)),
//! );
//!
//! let report = session
//!     .run(Method::Holistic, &RunConfig::paper(truth.len().min(30)))
//!     .unwrap();
//! let recall = report.recall_curve(&truth);
//! assert!(*recall.last().unwrap() > 0.0);
//! ```

pub mod complaint;
pub mod driver;
pub mod durable;
pub mod metrics;
pub mod qfunc;
pub mod rank;
pub mod twostep;

pub use complaint::{Complaint, QuerySpec, ValueOp};
pub use driver::{DebugReport, DebugSession, IterStats, PreparedQueries, RunConfig};
pub use metrics::{auccr, recall_curve};
pub use rank::{rank, Method, RankContext, RankError, Ranking};
pub use twostep::{sql_step, SqlStep, SqlStepConfig};

/// Convenience re-exports for downstream users.
pub mod prelude {
    pub use crate::complaint::{Complaint, QuerySpec, ValueOp};
    pub use crate::driver::{DebugReport, DebugSession, RunConfig};
    pub use crate::rank::Method;
}
