//! End-to-end tests of the Rain system: complaints → ranking → removal,
//! across methods and query shapes, on small workloads (fast in debug
//! builds).

use rain_core::prelude::*;
use rain_core::{sql_step, SqlStep, SqlStepConfig, ValueOp};
use rain_data::dblp::DblpConfig;
use rain_data::digits::{DigitsConfig, N_CLASSES, N_PIXELS};
use rain_data::flip_labels_where;
use rain_model::{Classifier, LogisticRegression, SoftmaxRegression};
use rain_sql::{run_query, Database, ExecOptions};

/// DBLP-style session with 50% of match labels flipped to non-match.
fn dblp_session(seed: u64) -> (DebugSession, Vec<usize>, usize) {
    let w = DblpConfig::small().generate(seed);
    let mut train = w.train.clone();
    let truth = flip_labels_where(&mut train, |_, _, y| y == 1, 0.5, |_| 0, seed);
    let mut db = Database::new();
    db.register("pairs", w.query_table());
    let true_count = w.true_match_count();
    let session = DebugSession::new(db, train, Box::new(LogisticRegression::new(17, 0.01)))
        .with_query(
            QuerySpec::new("SELECT COUNT(*) FROM pairs WHERE predict(*) = 1")
                .with_complaint(Complaint::scalar_eq(true_count as f64)),
        );
    (session, truth, true_count)
}

#[test]
fn holistic_beats_loss_under_systematic_corruption() {
    let (session, truth, _) = dblp_session(1);
    let budget = 40.min(truth.len());
    let hol = session
        .run(Method::Holistic, &RunConfig::paper(budget))
        .unwrap();
    let loss = session
        .run(Method::Loss, &RunConfig::paper(budget))
        .unwrap();
    let a_hol = hol.auccr(&truth);
    let a_loss = loss.auccr(&truth);
    assert!(
        a_hol > a_loss + 0.1,
        "Holistic {a_hol} should dominate Loss {a_loss} at 50% corruption"
    );
    assert!(a_hol > 0.5, "Holistic AUCCR {a_hol}");
}

#[test]
fn twostep_count_complaint_recovers_corruptions() {
    let (session, truth, _) = dblp_session(2);
    let budget = 30.min(truth.len());
    let ts = session
        .run(Method::TwoStep, &RunConfig::paper(budget))
        .unwrap();
    assert!(ts.failure.is_none(), "TwoStep failed: {:?}", ts.failure);
    let recall = ts.recall_curve(&truth);
    assert!(
        *recall.last().unwrap() > 0.0,
        "TwoStep found nothing: {recall:?}"
    );
}

#[test]
fn removing_corruptions_repairs_the_query() {
    // After Holistic removes the corrupted records, retraining should move
    // the query result substantially back toward the complaint target
    // (the corrupted model collapses to predicting ~no matches at all).
    let (session, truth, true_count) = dblp_session(3);
    let count_with = |train: &rain_model::Dataset| -> f64 {
        let mut model = session.model.clone();
        rain_model::train_lbfgs(model.as_mut(), train, &rain_model::LbfgsConfig::default());
        let out = run_query(
            &session.db,
            model.as_ref(),
            &session.queries[0].sql,
            ExecOptions::default(),
        )
        .unwrap();
        match out.scalar().unwrap() {
            rain_sql::Value::Int(v) => v as f64,
            other => panic!("unexpected {other:?}"),
        }
    };
    let corrupted_count = count_with(&session.train);
    let report = session
        .run(Method::Holistic, &RunConfig::paper(truth.len()))
        .unwrap();
    let cleaned_count = count_with(&session.train.remove_ids(&report.removed));
    // The corrupted model must be visibly broken, and debugging must
    // recover at least half of the gap to the true count.
    assert!(
        corrupted_count < true_count as f64 * 0.5,
        "corruption did not break the query (count {corrupted_count})"
    );
    let recovered = (cleaned_count - corrupted_count) / (true_count as f64 - corrupted_count);
    assert!(
        recovered > 0.5,
        "debugging recovered only {recovered:.2} of the gap \
         (corrupted {corrupted_count}, cleaned {cleaned_count}, true {true_count})"
    );
}

#[test]
fn driver_respects_budget_and_batch_size() {
    let (session, truth, _) = dblp_session(4);
    let budget = 23.min(truth.len());
    let report = session
        .run(Method::Holistic, &RunConfig::paper(budget))
        .unwrap();
    assert_eq!(report.removed.len(), budget);
    // Batches: 10, 10, 3.
    let sizes: Vec<usize> = report.iterations.iter().map(|i| i.removed.len()).collect();
    assert_eq!(sizes, vec![10, 10, 3]);
    // No record removed twice.
    let mut ids = report.removed.clone();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), budget);
}

#[test]
fn stop_when_satisfied_halts_early() {
    // Complain that the count should be exactly what it already is.
    let w = DblpConfig::small().generate(5);
    let mut db = Database::new();
    db.register("pairs", w.query_table());
    let mut model = LogisticRegression::new(17, 0.01);
    rain_model::train_lbfgs(&mut model, &w.train, &rain_model::LbfgsConfig::default());
    let out = run_query(
        &db,
        &model,
        "SELECT COUNT(*) FROM pairs WHERE predict(*) = 1",
        ExecOptions::default(),
    )
    .unwrap();
    let current = match out.scalar().unwrap() {
        rain_sql::Value::Int(v) => v as f64,
        other => panic!("unexpected {other:?}"),
    };
    let session = DebugSession::new(db, w.train.clone(), Box::new(model)).with_query(
        QuerySpec::new("SELECT COUNT(*) FROM pairs WHERE predict(*) = 1")
            .with_complaint(Complaint::scalar_eq(current)),
    );
    let report = session
        .run(
            Method::Holistic,
            &RunConfig {
                stop_when_satisfied: true,
                ..RunConfig::paper(50)
            },
        )
        .unwrap();
    assert!(report.removed.is_empty(), "removed {:?}", report.removed);
    assert!(report.iterations[0].complaints_satisfied);
}

#[test]
fn auto_heuristic_selects_methods_per_section_5_1() {
    let agg = vec![QuerySpec::new("q").with_complaint(Complaint::scalar_eq(1.0))];
    assert_eq!(Method::Auto.resolve(&agg), Method::Holistic);
    let point = vec![QuerySpec::new("q").with_complaint(Complaint::prediction_is("t", 0, 1))];
    assert_eq!(Method::Auto.resolve(&point), Method::TwoStep);
    let mixed = vec![
        QuerySpec::new("q").with_complaint(Complaint::prediction_is("t", 0, 1)),
        QuerySpec::new("q2").with_complaint(Complaint::tuple_delete(0)),
    ];
    assert_eq!(Method::Auto.resolve(&mixed), Method::Holistic);
}

// ---------- TwoStep SQL-step unit behaviour ----------

/// A fixed 3-class model over 3-D one-hot features.
fn tri_model() -> SoftmaxRegression {
    let mut m = SoftmaxRegression::new(3, 3, 0.0);
    let mut p = vec![0.0; 4 * 3];
    for j in 0..3 {
        p[j * 3 + j] = 40.0;
    }
    m.set_params(&p);
    m
}

fn tri_db(left_classes: &[usize], right_classes: &[usize]) -> Database {
    use rain_linalg::Matrix;
    use rain_sql::table::{ColType, Column, Schema, Table};
    let mk = |classes: &[usize]| {
        let rows: Vec<Vec<f64>> = classes
            .iter()
            .map(|&c| {
                let mut v = vec![0.0; 3];
                v[c] = 1.0;
                v
            })
            .collect();
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        Table::from_columns(
            Schema::new(&[("id", ColType::Int)]),
            vec![Column::Int((0..classes.len() as i64).collect())],
        )
        .with_features(Matrix::from_rows(&refs))
    };
    let mut db = Database::new();
    db.register("l", mk(left_classes));
    db.register("r", mk(right_classes));
    db
}

#[test]
fn sql_step_cardinality_presolve() {
    let db = tri_db(&[0, 0, 1, 1, 2], &[0]);
    let model = tri_model();
    let out = run_query(
        &db,
        &model,
        "SELECT COUNT(*) FROM l WHERE predict(*) = 0",
        ExecOptions::debug(),
    )
    .unwrap();
    // Current count of class 0 is 2; complain it should be 4.
    let repairs = match sql_step(
        &out,
        &[Complaint::scalar_eq(4.0)],
        3,
        &SqlStepConfig::default(),
    ) {
        SqlStep::Repairs(r) => r,
        other => panic!("unexpected {other:?}"),
    };
    assert_eq!(repairs.len(), 2, "minimal repair flips exactly 2");
    assert!(
        repairs.iter().all(|&(_, c)| c == 0),
        "flips must assign class 0"
    );
    // Complain it should be 1 → one record flipped OUT of class 0.
    let repairs = match sql_step(
        &out,
        &[Complaint::scalar_eq(1.0)],
        3,
        &SqlStepConfig::default(),
    ) {
        SqlStep::Repairs(r) => r,
        other => panic!("unexpected {other:?}"),
    };
    assert_eq!(repairs.len(), 1);
    assert_ne!(repairs[0].1, 0, "out-flip must leave class 0");
}

#[test]
fn sql_step_prediction_complaints_are_fixed_points() {
    let db = tri_db(&[0, 1, 2], &[0]);
    let model = tri_model();
    let out = run_query(
        &db,
        &model,
        "SELECT COUNT(*) FROM l WHERE predict(*) = 0",
        ExecOptions::debug(),
    )
    .unwrap();
    let repairs = match sql_step(
        &out,
        &[
            Complaint::prediction_is("l", 0, 2), // change row 0 to class 2
            Complaint::prediction_is("l", 1, 1), // row 1 already class 1
        ],
        3,
        &SqlStepConfig::default(),
    ) {
        SqlStep::Repairs(r) => r,
        other => panic!("unexpected {other:?}"),
    };
    assert_eq!(repairs.len(), 1, "only real changes are repairs");
    assert_eq!(repairs[0].1, 2);
}

#[test]
fn sql_step_join_pairs_use_vertex_cover() {
    // left digits all predicted 1; right all predicted 1 → all pairs join.
    let db = tri_db(&[1, 1, 1], &[1]);
    let model = tri_model();
    let out = run_query(
        &db,
        &model,
        "SELECT * FROM l, r WHERE predict(l) = predict(r)",
        ExecOptions::debug(),
    )
    .unwrap();
    assert_eq!(out.table.n_rows(), 3);
    // Complain about all three join rows. Minimum cover = flip the single
    // shared right-side record.
    let complaints: Vec<Complaint> = (0..3).map(Complaint::tuple_delete).collect();
    let repairs = match sql_step(&out, &complaints, 3, &SqlStepConfig::default()) {
        SqlStep::Repairs(r) => r,
        other => panic!("unexpected {other:?}"),
    };
    assert_eq!(
        repairs.len(),
        1,
        "vertex cover should flip one record: {repairs:?}"
    );
    let (var, class) = repairs[0];
    assert_eq!(out.predvars.info(var).table, "r");
    assert_ne!(class, 1);
}

#[test]
fn sql_step_join_count_zero_partitions_classes() {
    let db = tri_db(&[0, 0, 1], &[1, 2]);
    let model = tri_model();
    let out = run_query(
        &db,
        &model,
        "SELECT COUNT(*) FROM l, r WHERE predict(l) = predict(r)",
        ExecOptions::debug(),
    )
    .unwrap();
    // One joining pair (left digit 1 × right digit 1); complain count = 0.
    let repairs = match sql_step(
        &out,
        &[Complaint::scalar_eq(0.0)],
        3,
        &SqlStepConfig::default(),
    ) {
        SqlStep::Repairs(r) => r,
        other => panic!("unexpected {other:?}"),
    };
    assert_eq!(
        repairs.len(),
        1,
        "one flip separates the sides: {repairs:?}"
    );
    // Verify the repair actually zeroes the discrete count.
    let mut preds = out.predvars.preds().to_vec();
    for &(v, c) in &repairs {
        preds[v as usize] = c;
    }
    let cell = &out.agg_cells[0][0];
    assert_eq!(cell.eval_discrete(&preds), 0.0);
}

#[test]
fn sql_step_generic_path_handles_conjunctions() {
    // A tuple complaint over an AND formula goes through Tseitin + B&B.
    let db = tri_db(&[0, 1], &[0, 1]);
    let model = tri_model();
    let out = run_query(
        &db,
        &model,
        "SELECT * FROM l, r WHERE predict(l) = 0 AND predict(r) = 1",
        ExecOptions::debug(),
    )
    .unwrap();
    assert_eq!(out.table.n_rows(), 1);
    let repairs = match sql_step(
        &out,
        &[Complaint::tuple_delete(0)],
        3,
        &SqlStepConfig::default(),
    ) {
        SqlStep::Repairs(r) => r,
        other => panic!("unexpected {other:?}"),
    };
    assert_eq!(
        repairs.len(),
        1,
        "one flip breaks the conjunction: {repairs:?}"
    );
    let mut preds = out.predvars.preds().to_vec();
    for &(v, c) in &repairs {
        preds[v as usize] = c;
    }
    assert!(!out.row_prov[0].eval_discrete(&preds));
}

#[test]
fn sql_step_timeout_on_oversized_ilp() {
    // Force the generic path with a tiny size wall.
    let db = tri_db(&[0, 1], &[0, 1]);
    let model = tri_model();
    let out = run_query(
        &db,
        &model,
        "SELECT * FROM l, r WHERE predict(l) = 0 AND predict(r) = 1",
        ExecOptions::debug(),
    )
    .unwrap();
    let cfg = SqlStepConfig {
        max_ilp_vars: 1,
        ..Default::default()
    };
    assert_eq!(
        sql_step(&out, &[Complaint::tuple_delete(0)], 3, &cfg),
        SqlStep::Timeout
    );
}

#[test]
fn sql_step_different_seeds_pick_different_repairs() {
    // Ambiguous complaint: count should drop by 1 among 5 identical rows.
    let db = tri_db(&[0, 0, 0, 0, 0], &[0]);
    let model = tri_model();
    let out = run_query(
        &db,
        &model,
        "SELECT COUNT(*) FROM l WHERE predict(*) = 0",
        ExecOptions::debug(),
    )
    .unwrap();
    let mut picks = std::collections::HashSet::new();
    for seed in 0..12 {
        let cfg = SqlStepConfig {
            seed,
            ..Default::default()
        };
        if let SqlStep::Repairs(r) = sql_step(&out, &[Complaint::scalar_eq(4.0)], 3, &cfg) {
            assert_eq!(r.len(), 1);
            picks.insert(r[0]);
        }
    }
    assert!(picks.len() > 1, "ambiguity must surface different optima");
}

// ---------- Multiclass end-to-end (MNIST-style) ----------

#[test]
fn holistic_on_digits_count_complaint() {
    // Small version of Q5: corrupt 1s to 7s, complain the count of 1s.
    let w = DigitsConfig {
        n_train: 250,
        n_query: 120,
    }
    .generate(11);
    let mut train = w.train.clone();
    let truth = flip_labels_where(&mut train, |_, _, y| y == 1, 0.6, |_| 7, 11);
    assert!(
        truth.len() >= 5,
        "need some corruptions, got {}",
        truth.len()
    );
    let mut db = Database::new();
    db.register(
        "mnist",
        w.query_table_for(&(0..10).collect::<Vec<_>>(), 120),
    );
    let true_ones = w.query_rows_with_digits(&[1]).len().min(120);
    let session = DebugSession::new(
        db,
        train,
        Box::new(SoftmaxRegression::new(N_PIXELS, N_CLASSES, 0.01)),
    )
    .with_query(
        QuerySpec::new("SELECT COUNT(*) FROM mnist WHERE predict(*) = 1")
            .with_complaint(Complaint::scalar_eq(true_ones as f64)),
    );
    let budget = truth.len().min(20);
    let report = session
        .run(Method::Holistic, &RunConfig::paper(budget))
        .unwrap();
    let recall = report.recall_curve(&truth);
    assert!(
        *recall.last().unwrap() >= 0.3,
        "Holistic digits recall {recall:?}"
    );
}

#[test]
fn inequality_complaints_drive_until_satisfied() {
    let (session, truth, true_count) = dblp_session(6);
    // "count should be at least X" — violated initially (undercount).
    let session = DebugSession {
        queries: vec![
            QuerySpec::new("SELECT COUNT(*) FROM pairs WHERE predict(*) = 1").with_complaint(
                Complaint::Value {
                    row: 0,
                    agg: 0,
                    op: ValueOp::Ge,
                    target: true_count as f64 * 0.9,
                },
            ),
        ],
        ..session
    };
    let report = session
        .run(
            Method::Holistic,
            &RunConfig {
                stop_when_satisfied: true,
                ..RunConfig::paper(truth.len())
            },
        )
        .unwrap();
    // Either satisfied early (good) or kept working; report must be sane.
    assert!(report.failure.is_none());
    assert!(!report.iterations.is_empty());
}

#[test]
fn run_prepared_reuses_state_and_skips_static_complaint_checks() {
    let (session, truth, _) = dblp_session(8);
    // Add a model-free query whose complaint verdict can never change
    // across iterations: refresh-aware checking must skip it after the
    // first check (its prediction dependency set is empty).
    let session = DebugSession {
        queries: {
            let mut qs = session.queries.clone();
            qs.push(
                QuerySpec::new("SELECT COUNT(*) FROM pairs")
                    .with_complaint(Complaint::scalar_eq(150.0)),
            );
            qs
        },
        ..session
    };
    let budget = 20.min(truth.len());
    let cfg = RunConfig::paper(budget);
    let mut pq = session.prepare_queries(true).unwrap();
    let first = session.run_prepared(Method::Loss, &cfg, &mut pq).unwrap();
    assert_eq!(
        first.skeleton_rebuilds, 0,
        "queried tables never change inside the loop"
    );
    assert!(first.iterations.len() >= 2);
    assert!(
        first.iterations[0].checks_skipped == 0,
        "first iteration has no prior verdicts"
    );
    assert!(
        first
            .iterations
            .iter()
            .skip(1)
            .all(|it| it.checks_skipped >= 1),
        "the model-free query must not be re-checked: {:?}",
        first
            .iterations
            .iter()
            .map(|it| it.checks_skipped)
            .collect::<Vec<_>>()
    );
    // Equivalent to a self-contained run…
    let fresh = session.run(Method::Loss, &cfg).unwrap();
    assert_eq!(first.removed, fresh.removed);
    // …and the same prepared state drives a second run (what the serving
    // layer does with cached skeletons).
    let second = session.run_prepared(Method::Loss, &cfg, &mut pq).unwrap();
    assert_eq!(second.removed, fresh.removed);
}

#[test]
fn incremental_refresh_reproduces_full_reexecution_loop() {
    // The driver with incremental refresh ON must walk exactly the same
    // trajectory as with full per-iteration re-execution: same
    // per-iteration rankings (removed-id batches, in rank order), same
    // complaint status, same final explanation.
    let (session, truth, _) = dblp_session(7);
    let budget = 30.min(truth.len());
    let run_with = |incremental: bool| {
        session
            .run(
                Method::Holistic,
                &RunConfig {
                    incremental,
                    ..RunConfig::paper(budget)
                },
            )
            .unwrap()
    };
    let inc = run_with(true);
    let full = run_with(false);
    assert_eq!(inc.removed, full.removed, "explanations diverge");
    assert_eq!(
        inc.iterations.len(),
        full.iterations.len(),
        "iteration counts diverge"
    );
    for (i, (a, b)) in inc.iterations.iter().zip(&full.iterations).enumerate() {
        assert_eq!(a.removed, b.removed, "iteration {i}: rankings diverge");
        assert_eq!(
            a.complaints_satisfied, b.complaints_satisfied,
            "iteration {i}: complaint status diverges"
        );
        assert_eq!(a.train_loss, b.train_loss, "iteration {i}: loss diverges");
    }
}

#[test]
fn profile_captures_a_per_iteration_span_tree() {
    let (session, truth, _) = dblp_session(6);
    let budget = 20.min(truth.len());
    let cfg = RunConfig {
        profile: true,
        ..RunConfig::paper(budget)
    };
    let report = session.run(Method::Holistic, &cfg).unwrap();
    let tree = report.profile.expect("profile requested but absent");
    assert_eq!(tree.name, "debug-run");
    // The one-time plan/prepare runs under the same root as the loop.
    let prep = tree.find("prepare-queries").expect("prepare-queries span");
    assert!(prep.find("prepare").is_some(), "skeleton capture traced");
    let iters: Vec<_> = tree
        .children
        .iter()
        .filter(|c| c.name == "iteration")
        .collect();
    assert_eq!(iters.len(), report.iterations.len());
    for it in &iters {
        for stage in ["train", "execute", "check", "rank"] {
            assert!(it.find(stage).is_some(), "iteration missing {stage} span");
        }
        // Incremental re-execution: the sql layer's refresh spans nest
        // under the driver's execute span.
        let exec = it.find("execute").unwrap();
        assert!(exec.find("refresh").is_some(), "refresh under execute");
    }
    // Profiling is opt-in: a plain run carries no tree.
    let plain = session
        .run(Method::Loss, &RunConfig::paper(5.min(truth.len())))
        .unwrap();
    assert!(plain.profile.is_none());
}
