//! Seeded randomness for reproducible experiments.
//!
//! Every generator, trainer and sampler in the workspace takes an explicit
//! seed and builds a [`RainRng`] from it, so experiment outputs are
//! deterministic across runs and machines. The generator is a
//! self-contained xoshiro256++ core seeded through SplitMix64 — the
//! workspace deliberately carries zero external dependencies, so no `rand`
//! crate. The normal sampler uses Box–Muller.

/// Deterministic random generator used across the workspace.
///
/// xoshiro256++ (Blackman & Vigna): 256 bits of state, period 2²⁵⁶−1,
/// passes BigCrush, and is trivially portable — which is all the
/// experiments need.
#[derive(Debug, Clone)]
pub struct RainRng {
    state: [u64; 4],
    /// Cached second Box–Muller variate.
    spare_normal: Option<f64>,
}

/// SplitMix64 step: used to expand a 64-bit seed into the 256-bit state.
fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl RainRng {
    /// Create a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut s = seed;
        let state = [
            splitmix64(&mut s),
            splitmix64(&mut s),
            splitmix64(&mut s),
            splitmix64(&mut s),
        ];
        RainRng {
            state,
            spare_normal: None,
        }
    }

    /// Next 64 random bits (the xoshiro256++ step).
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s = [s0, s1, s2, s3];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.state = s;
        result
    }

    /// Derive an independent child generator; `stream` distinguishes
    /// sub-uses of the same seed (e.g. "labels" vs "features").
    pub fn derive(&mut self, stream: u64) -> RainRng {
        let s = self.next_u64() ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        RainRng::seed_from_u64(s)
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi)`.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)` (Lemire-style rejection-free enough for
    /// experiment-scale `n`: bias is < n/2⁶⁴).
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below: empty range");
        // 128-bit multiply-shift maps 64 random bits onto [0, n).
        (((self.next_u64() as u128) * (n as u128)) >> 64) as usize
    }

    /// Uniform integer in the half-open range `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo >= hi`.
    pub fn int_range(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "int_range: empty range");
        lo + self.below((hi - lo) as usize) as i64
    }

    /// Bernoulli draw with success probability `p` (clamped to `[0,1]`).
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.uniform() < p.clamp(0.0, 1.0)
    }

    /// Standard normal via Box–Muller.
    pub fn normal(&mut self) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        // Draw u1 in (0, 1] to keep ln finite.
        let u1 = 1.0 - self.uniform();
        let u2 = self.uniform();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal with the given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f64, std: f64) -> f64 {
        mean + std * self.normal()
    }

    /// Fill a fresh vector with i.i.d. `N(0, std²)` entries.
    pub fn normal_vec(&mut self, n: usize, std: f64) -> Vec<f64> {
        (0..n).map(|_| self.normal() * std).collect()
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i + 1);
            xs.swap(i, j);
        }
    }

    /// Sample `k` distinct indices from `0..n` (k ≤ n), in random order.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "sample_indices: k > n");
        let mut idx: Vec<usize> = (0..n).collect();
        self.shuffle(&mut idx);
        idx.truncate(k);
        idx
    }

    /// Draw an index according to unnormalized non-negative weights.
    ///
    /// # Panics
    /// Panics if the weights are empty or sum to zero.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weighted_index: weights must sum to > 0");
        let mut t = self.uniform() * total;
        for (i, &w) in weights.iter().enumerate() {
            t -= w;
            if t <= 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = RainRng::seed_from_u64(42);
        let mut b = RainRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.uniform(), b.uniform());
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = RainRng::seed_from_u64(1);
        let mut b = RainRng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.uniform() == b.uniform()).count();
        assert!(same < 4);
    }

    #[test]
    fn uniform_is_in_unit_interval() {
        let mut rng = RainRng::seed_from_u64(11);
        for _ in 0..10_000 {
            let u = rng.uniform();
            assert!((0.0..1.0).contains(&u), "u = {u}");
        }
    }

    #[test]
    fn below_covers_the_range() {
        let mut rng = RainRng::seed_from_u64(12);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[rng.below(7)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn int_range_respects_bounds() {
        let mut rng = RainRng::seed_from_u64(13);
        for _ in 0..1000 {
            let v = rng.int_range(-3, 4);
            assert!((-3..4).contains(&v));
        }
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = RainRng::seed_from_u64(7);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.normal()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn sample_indices_are_distinct() {
        let mut rng = RainRng::seed_from_u64(3);
        let idx = rng.sample_indices(50, 20);
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 20);
        assert!(sorted.iter().all(|&i| i < 50));
    }

    #[test]
    fn bernoulli_extremes() {
        let mut rng = RainRng::seed_from_u64(4);
        assert!(!rng.bernoulli(0.0));
        assert!(rng.bernoulli(1.0));
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = RainRng::seed_from_u64(5);
        let mut counts = [0usize; 3];
        for _ in 0..3000 {
            counts[rng.weighted_index(&[1.0, 0.0, 3.0])] += 1;
        }
        assert_eq!(counts[1], 0);
        assert!(counts[2] > counts[0] * 2);
    }

    #[test]
    fn derive_streams_are_independent() {
        let mut root = RainRng::seed_from_u64(9);
        let mut c1 = root.derive(1);
        let mut c2 = root.derive(2);
        assert_ne!(c1.uniform(), c2.uniform());
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = RainRng::seed_from_u64(10);
        let mut xs: Vec<usize> = (0..40).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..40).collect::<Vec<_>>());
        assert_ne!(xs, sorted, "40 elements should not shuffle to identity");
    }
}
