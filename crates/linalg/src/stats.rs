//! Small statistics helpers used by metrics and workload generators.

/// Arithmetic mean (0 for the empty slice).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance (0 for slices shorter than 2).
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Compensated (Kahan) summation; keeps error O(1) regardless of length.
pub fn kahan_sum(xs: &[f64]) -> f64 {
    let mut sum = 0.0;
    let mut c = 0.0;
    for &x in xs {
        let y = x - c;
        let t = sum + y;
        c = (t - sum) - y;
        sum = t;
    }
    sum
}

/// Numerically-stable log-sum-exp.
pub fn log_sum_exp(xs: &[f64]) -> f64 {
    let m = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if m.is_infinite() {
        return m;
    }
    m + xs.iter().map(|x| (x - m).exp()).sum::<f64>().ln()
}

/// Logistic sigmoid `1 / (1 + e^{-x})`, stable for large |x|.
#[inline]
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        let e = (-x).exp();
        1.0 / (1.0 + e)
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Softmax of a slice into a fresh vector (stable; sums to 1).
pub fn softmax(xs: &[f64]) -> Vec<f64> {
    let lse = log_sum_exp(xs);
    xs.iter().map(|x| (x - lse).exp()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_basics() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(variance(&[1.0]), 0.0);
        assert!((variance(&[1.0, 3.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn kahan_beats_naive_on_cancellation() {
        // 1 + 1e-16 repeated: naive sum loses the small terms.
        let mut xs = vec![1.0];
        xs.extend(std::iter::repeat_n(1e-16, 10_000));
        let k = kahan_sum(&xs);
        assert!((k - (1.0 + 1e-12)).abs() < 1e-13, "kahan {k}");
    }

    #[test]
    fn log_sum_exp_is_stable() {
        let v = log_sum_exp(&[1000.0, 1000.0]);
        assert!((v - (1000.0 + 2f64.ln())).abs() < 1e-9);
        assert_eq!(log_sum_exp(&[]), f64::NEG_INFINITY);
    }

    #[test]
    fn sigmoid_limits() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(60.0) > 1.0 - 1e-12);
        assert!(sigmoid(-60.0) < 1e-12);
        // symmetry
        assert!((sigmoid(2.0) + sigmoid(-2.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn softmax_sums_to_one_and_orders() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p[2] > p[1] && p[1] > p[0]);
        // stability under huge inputs
        let q = softmax(&[1e4, 1e4]);
        assert!((q[0] - 0.5).abs() < 1e-12);
    }
}
