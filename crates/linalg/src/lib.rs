//! Dense linear-algebra kernels and seeded randomness helpers for Rain.
//!
//! Everything in the workspace that touches numbers — model training,
//! Hessian-vector products, conjugate gradient, the simplex solver — is built
//! on the small set of kernels in this crate. The design goals are:
//!
//! - **Determinism.** All randomness flows through [`rng::RainRng`], a
//!   seedable generator, so every experiment in the paper reproduction is
//!   bit-for-bit repeatable.
//! - **Predictable performance.** Vectors are plain `&[f64]` slices and
//!   matrices are row-major [`Matrix`] values; hot loops iterate slices so
//!   the compiler can elide bounds checks and vectorize.
//! - **No dependencies** beyond `rand` for the core generator.
//!
//! # Example
//!
//! ```
//! use rain_linalg::{Matrix, vecops};
//!
//! let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
//! let x = [1.0, -1.0];
//! let y = a.matvec(&x);
//! assert_eq!(y, vec![-1.0, -1.0]);
//! assert_eq!(vecops::dot(&y, &y), 2.0);
//! ```

pub mod matrix;
pub mod rng;
pub mod stats;
pub mod vecops;

pub use matrix::Matrix;
pub use rng::RainRng;
