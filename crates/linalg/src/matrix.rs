//! Row-major dense matrix.
//!
//! [`Matrix`] stores `rows × cols` values contiguously. Rain's models keep
//! feature sets as one `Matrix` (one example per row), so the hot operations
//! are row access, `matvec` (`A·x`), `matvec_t` (`Aᵀ·x`), and rank-one
//! accumulation `A += α·x·yᵀ`.

use crate::vecops;

/// Dense row-major `f64` matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// All-zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Build from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "Matrix::from_vec: shape mismatch");
        Matrix { rows, cols, data }
    }

    /// Build from row slices (all must have equal length).
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        if rows.is_empty() {
            return Matrix::zeros(0, 0);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "Matrix::from_rows: ragged rows");
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        debug_assert!(i < self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        debug_assert!(i < self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.cols + j]
    }

    /// Element setter.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.cols + j] = v;
    }

    /// The underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable access to the underlying row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Iterator over rows as slices.
    pub fn iter_rows(&self) -> impl ExactSizeIterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols.max(1)).take(self.rows)
    }

    /// Matrix–vector product `A·x`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "matvec: dimension mismatch");
        self.iter_rows().map(|r| vecops::dot(r, x)).collect()
    }

    /// Transposed matrix–vector product `Aᵀ·x`.
    pub fn matvec_t(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.rows, "matvec_t: dimension mismatch");
        let mut out = vec![0.0; self.cols];
        for (r, &xi) in self.iter_rows().zip(x) {
            vecops::axpy(xi, r, &mut out);
        }
        out
    }

    /// Matrix–matrix product `A·B`.
    pub fn matmul(&self, b: &Matrix) -> Matrix {
        assert_eq!(self.cols, b.rows, "matmul: dimension mismatch");
        let mut out = Matrix::zeros(self.rows, b.cols);
        for i in 0..self.rows {
            for (k, &aik) in self.row(i).iter().enumerate() {
                if aik != 0.0 {
                    let brow = b.row(k);
                    vecops::axpy(aik, brow, out.row_mut(i));
                }
            }
        }
        out
    }

    /// Transpose into a new matrix.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.set(j, i, self.get(i, j));
            }
        }
        out
    }

    /// Rank-one update `self += alpha * x yᵀ`.
    pub fn add_outer(&mut self, alpha: f64, x: &[f64], y: &[f64]) {
        assert_eq!(x.len(), self.rows, "add_outer: row mismatch");
        assert_eq!(y.len(), self.cols, "add_outer: col mismatch");
        for (i, &xi) in x.iter().enumerate() {
            if xi != 0.0 {
                vecops::axpy(alpha * xi, y, self.row_mut(i));
            }
        }
    }

    /// Select a subset of rows into a new matrix.
    pub fn select_rows(&self, idx: &[usize]) -> Matrix {
        let mut data = Vec::with_capacity(idx.len() * self.cols);
        for &i in idx {
            data.extend_from_slice(self.row(i));
        }
        Matrix::from_vec(idx.len(), self.cols, data)
    }

    /// Stack another matrix below this one (column counts must match).
    pub fn vstack(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "vstack: column mismatch");
        let mut data = Vec::with_capacity((self.rows + other.rows) * self.cols);
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        Matrix::from_vec(self.rows + other.rows, self.cols, data)
    }

    /// Frobenius norm.
    pub fn frobenius(&self) -> f64 {
        vecops::norm2(&self.data)
    }

    /// Solve the symmetric positive-definite system `A x = b` by Cholesky
    /// factorization. Returns `None` when the matrix is not SPD (a
    /// non-positive pivot appears).
    ///
    /// Used by tests to cross-check the iterative conjugate-gradient solver
    /// and by small exact computations; O(n³), so callers keep `n` small.
    pub fn solve_spd(&self, b: &[f64]) -> Option<Vec<f64>> {
        assert_eq!(self.rows, self.cols, "solve_spd: matrix must be square");
        assert_eq!(b.len(), self.rows, "solve_spd: rhs mismatch");
        let n = self.rows;
        // Cholesky: A = L Lᵀ, lower triangle stored in `l`.
        let mut l = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..=i {
                let mut sum = self.get(i, j);
                for k in 0..j {
                    sum -= l[i * n + k] * l[j * n + k];
                }
                if i == j {
                    if sum <= 0.0 {
                        return None;
                    }
                    l[i * n + i] = sum.sqrt();
                } else {
                    l[i * n + j] = sum / l[j * n + j];
                }
            }
        }
        // Forward substitution L y = b.
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[i];
            for k in 0..i {
                sum -= l[i * n + k] * y[k];
            }
            y[i] = sum / l[i * n + i];
        }
        // Back substitution Lᵀ x = y.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = y[i];
            for k in i + 1..n {
                sum -= l[k * n + i] * x[k];
            }
            x[i] = sum / l[i * n + i];
        }
        Some(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!((m.rows(), m.cols()), (2, 2));
        assert_eq!(m.get(1, 0), 3.0);
        assert_eq!(m.row(0), &[1.0, 2.0]);
    }

    #[test]
    fn identity_matvec_is_noop() {
        let i3 = Matrix::identity(3);
        let x = [1.0, -2.0, 5.0];
        assert_eq!(i3.matvec(&x), x.to_vec());
    }

    #[test]
    fn matvec_t_matches_transpose_matvec() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let x = [1.0, -1.0];
        assert_eq!(m.matvec_t(&x), m.transpose().matvec(&x));
    }

    #[test]
    fn matmul_small() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[2.0, 1.0], &[4.0, 3.0]]));
    }

    #[test]
    fn add_outer_accumulates() {
        let mut m = Matrix::zeros(2, 2);
        m.add_outer(2.0, &[1.0, 0.0], &[0.0, 3.0]);
        assert_eq!(m, Matrix::from_rows(&[&[0.0, 6.0], &[0.0, 0.0]]));
    }

    #[test]
    fn select_and_stack() {
        let m = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0]]);
        let sel = m.select_rows(&[2, 0]);
        assert_eq!(sel, Matrix::from_rows(&[&[3.0], &[1.0]]));
        let stacked = sel.vstack(&m);
        assert_eq!(stacked.rows(), 5);
        assert_eq!(stacked.row(4), &[3.0]);
    }

    #[test]
    fn cholesky_solves_spd() {
        // A = Bᵀ B + I is SPD.
        let b = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let mut a = b.transpose().matmul(&b);
        for i in 0..2 {
            a.set(i, i, a.get(i, i) + 1.0);
        }
        let rhs = [1.0, 2.0];
        let x = a.solve_spd(&rhs).expect("SPD solve");
        let back = a.matvec(&x);
        assert!(crate::vecops::approx_eq(&back, &rhs, 1e-9));
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        assert!(a.solve_spd(&[1.0, 1.0]).is_none());
    }

    #[test]
    fn empty_matrix_iteration() {
        let m = Matrix::zeros(0, 0);
        assert_eq!(m.iter_rows().count(), 0);
    }
}
