//! Vector kernels over `&[f64]` slices.
//!
//! These are the inner loops of training, Hessian-vector products and
//! conjugate gradient. They assert matching lengths (a programming error,
//! not a recoverable condition) and then iterate with `zip` so release
//! builds vectorize without bounds checks.

/// Dot product `xᵀy`.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// `y += alpha * x` (the BLAS `axpy`).
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// `x *= alpha` in place.
#[inline]
pub fn scale(x: &mut [f64], alpha: f64) {
    for xi in x {
        *xi *= alpha;
    }
}

/// Element-wise sum `x + y` into a new vector.
#[inline]
pub fn add(x: &[f64], y: &[f64]) -> Vec<f64> {
    assert_eq!(x.len(), y.len(), "add: length mismatch");
    x.iter().zip(y).map(|(a, b)| a + b).collect()
}

/// Element-wise difference `x - y` into a new vector.
#[inline]
pub fn sub(x: &[f64], y: &[f64]) -> Vec<f64> {
    assert_eq!(x.len(), y.len(), "sub: length mismatch");
    x.iter().zip(y).map(|(a, b)| a - b).collect()
}

/// Euclidean norm `‖x‖₂`.
#[inline]
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// Squared Euclidean norm `‖x‖₂²`.
#[inline]
pub fn norm2_sq(x: &[f64]) -> f64 {
    dot(x, x)
}

/// Infinity norm `max |xᵢ|` (0 for the empty vector).
#[inline]
pub fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0, |m, v| m.max(v.abs()))
}

/// Fill `x` with zeros.
#[inline]
pub fn zero(x: &mut [f64]) {
    for xi in x {
        *xi = 0.0;
    }
}

/// Copy `src` into `dst`.
#[inline]
pub fn copy(src: &[f64], dst: &mut [f64]) {
    dst.copy_from_slice(src);
}

/// Linear combination `a*x + b*y` into a new vector.
#[inline]
pub fn lincomb(a: f64, x: &[f64], b: f64, y: &[f64]) -> Vec<f64> {
    assert_eq!(x.len(), y.len(), "lincomb: length mismatch");
    x.iter().zip(y).map(|(xi, yi)| a * xi + b * yi).collect()
}

/// Index of the maximum element (first one on ties).
///
/// Returns `None` for an empty slice. NaN entries never win.
#[inline]
pub fn argmax(x: &[f64]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &v) in x.iter().enumerate() {
        match best {
            Some((_, b)) if v <= b => {}
            _ if v.is_nan() => {}
            _ => best = Some((i, v)),
        }
    }
    best.map(|(i, _)| i)
}

/// True when `x` and `y` agree element-wise within absolute tolerance `tol`.
#[inline]
pub fn approx_eq(x: &[f64], y: &[f64], tol: f64) -> bool {
    x.len() == y.len() && x.iter().zip(y).all(|(a, b)| (a - b).abs() <= tol)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_basic() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, -1.0], &mut y);
        assert_eq!(y, vec![7.0, -1.0]);
    }

    #[test]
    fn scale_in_place() {
        let mut x = vec![1.0, -2.0];
        scale(&mut x, -0.5);
        assert_eq!(x, vec![-0.5, 1.0]);
    }

    #[test]
    fn add_sub_roundtrip() {
        let x = [1.0, 2.0, 3.0];
        let y = [0.5, -0.5, 1.5];
        assert_eq!(sub(&add(&x, &y), &y), x.to_vec());
    }

    #[test]
    fn norms() {
        assert_eq!(norm2(&[3.0, 4.0]), 5.0);
        assert_eq!(norm2_sq(&[3.0, 4.0]), 25.0);
        assert_eq!(norm_inf(&[-3.0, 2.0]), 3.0);
        assert_eq!(norm_inf(&[]), 0.0);
    }

    #[test]
    fn argmax_handles_ties_and_nan() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0]), Some(1));
        assert_eq!(argmax(&[f64::NAN, 1.0]), Some(1));
        assert_eq!(argmax(&[]), None);
    }

    #[test]
    fn lincomb_matches_manual() {
        assert_eq!(
            lincomb(2.0, &[1.0, 0.0], -1.0, &[0.0, 3.0]),
            vec![2.0, -3.0]
        );
    }

    #[test]
    fn approx_eq_tolerance() {
        assert!(approx_eq(&[1.0], &[1.0 + 1e-12], 1e-9));
        assert!(!approx_eq(&[1.0], &[1.1], 1e-9));
        assert!(!approx_eq(&[1.0], &[1.0, 2.0], 1.0));
    }
}
