//! Property-based tests for the linear-algebra kernels.

use proptest::prelude::*;
use rain_linalg::{stats, vecops, Matrix};

fn vec_strategy(len: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-100.0f64..100.0, len)
}

proptest! {
    #[test]
    fn dot_is_commutative(x in vec_strategy(16), y in vec_strategy(16)) {
        prop_assert!((vecops::dot(&x, &y) - vecops::dot(&y, &x)).abs() < 1e-9);
    }

    #[test]
    fn dot_is_bilinear(x in vec_strategy(8), y in vec_strategy(8), a in -10.0f64..10.0) {
        let ax: Vec<f64> = x.iter().map(|v| a * v).collect();
        let lhs = vecops::dot(&ax, &y);
        let rhs = a * vecops::dot(&x, &y);
        prop_assert!((lhs - rhs).abs() < 1e-6 * (1.0 + rhs.abs()));
    }

    #[test]
    fn cauchy_schwarz(x in vec_strategy(12), y in vec_strategy(12)) {
        let lhs = vecops::dot(&x, &y).abs();
        let rhs = vecops::norm2(&x) * vecops::norm2(&y);
        prop_assert!(lhs <= rhs + 1e-6);
    }

    #[test]
    fn triangle_inequality(x in vec_strategy(12), y in vec_strategy(12)) {
        let sum = vecops::add(&x, &y);
        prop_assert!(vecops::norm2(&sum) <= vecops::norm2(&x) + vecops::norm2(&y) + 1e-9);
    }

    #[test]
    fn matvec_is_linear(
        data in proptest::collection::vec(-10.0f64..10.0, 12),
        x in vec_strategy(4),
        y in vec_strategy(4),
    ) {
        let m = Matrix::from_vec(3, 4, data);
        let lhs = m.matvec(&vecops::add(&x, &y));
        let rhs = vecops::add(&m.matvec(&x), &m.matvec(&y));
        prop_assert!(vecops::approx_eq(&lhs, &rhs, 1e-6));
    }

    #[test]
    fn transpose_is_involution(data in proptest::collection::vec(-10.0f64..10.0, 12)) {
        let m = Matrix::from_vec(3, 4, data);
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matvec_t_agrees_with_explicit_transpose(
        data in proptest::collection::vec(-10.0f64..10.0, 20),
        x in vec_strategy(4),
    ) {
        let m = Matrix::from_vec(4, 5, data);
        prop_assert!(vecops::approx_eq(&m.matvec_t(&x), &m.transpose().matvec(&x), 1e-8));
    }

    #[test]
    fn spd_solve_roundtrip(
        data in proptest::collection::vec(-3.0f64..3.0, 9),
        b in vec_strategy(3),
    ) {
        // A = MᵀM + I is always SPD.
        let m = Matrix::from_vec(3, 3, data);
        let mut a = m.transpose().matmul(&m);
        for i in 0..3 {
            a.set(i, i, a.get(i, i) + 1.0);
        }
        let x = a.solve_spd(&b).expect("SPD");
        prop_assert!(vecops::approx_eq(&a.matvec(&x), &b, 1e-6));
    }

    #[test]
    fn softmax_normalizes(xs in vec_strategy(6)) {
        let p = stats::softmax(&xs);
        prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn kahan_matches_naive_for_benign_inputs(xs in vec_strategy(64)) {
        let naive: f64 = xs.iter().sum();
        prop_assert!((stats::kahan_sum(&xs) - naive).abs() < 1e-6);
    }
}
