//! Property-based tests for the linear-algebra kernels.
//!
//! The workspace carries no external dependencies, so instead of a
//! proptest-style shrinking framework these properties are checked over
//! many seeded-random cases drawn from [`RainRng`] — deterministic across
//! runs, with the failing seed printed by the assertion message.

use rain_linalg::{stats, vecops, Matrix, RainRng};

const CASES: u64 = 64;

fn rand_vec(rng: &mut RainRng, len: usize, lo: f64, hi: f64) -> Vec<f64> {
    (0..len).map(|_| rng.uniform_range(lo, hi)).collect()
}

#[test]
fn dot_is_commutative() {
    for seed in 0..CASES {
        let mut rng = RainRng::seed_from_u64(seed);
        let x = rand_vec(&mut rng, 16, -100.0, 100.0);
        let y = rand_vec(&mut rng, 16, -100.0, 100.0);
        assert!(
            (vecops::dot(&x, &y) - vecops::dot(&y, &x)).abs() < 1e-9,
            "seed {seed}"
        );
    }
}

#[test]
fn dot_is_bilinear() {
    for seed in 0..CASES {
        let mut rng = RainRng::seed_from_u64(seed);
        let x = rand_vec(&mut rng, 8, -100.0, 100.0);
        let y = rand_vec(&mut rng, 8, -100.0, 100.0);
        let a = rng.uniform_range(-10.0, 10.0);
        let ax: Vec<f64> = x.iter().map(|v| a * v).collect();
        let lhs = vecops::dot(&ax, &y);
        let rhs = a * vecops::dot(&x, &y);
        assert!((lhs - rhs).abs() < 1e-6 * (1.0 + rhs.abs()), "seed {seed}");
    }
}

#[test]
fn cauchy_schwarz() {
    for seed in 0..CASES {
        let mut rng = RainRng::seed_from_u64(seed);
        let x = rand_vec(&mut rng, 12, -100.0, 100.0);
        let y = rand_vec(&mut rng, 12, -100.0, 100.0);
        let lhs = vecops::dot(&x, &y).abs();
        let rhs = vecops::norm2(&x) * vecops::norm2(&y);
        assert!(lhs <= rhs + 1e-6, "seed {seed}");
    }
}

#[test]
fn triangle_inequality() {
    for seed in 0..CASES {
        let mut rng = RainRng::seed_from_u64(seed);
        let x = rand_vec(&mut rng, 12, -100.0, 100.0);
        let y = rand_vec(&mut rng, 12, -100.0, 100.0);
        let sum = vecops::add(&x, &y);
        assert!(
            vecops::norm2(&sum) <= vecops::norm2(&x) + vecops::norm2(&y) + 1e-9,
            "seed {seed}"
        );
    }
}

#[test]
fn matvec_is_linear() {
    for seed in 0..CASES {
        let mut rng = RainRng::seed_from_u64(seed);
        let m = Matrix::from_vec(3, 4, rand_vec(&mut rng, 12, -10.0, 10.0));
        let x = rand_vec(&mut rng, 4, -100.0, 100.0);
        let y = rand_vec(&mut rng, 4, -100.0, 100.0);
        let lhs = m.matvec(&vecops::add(&x, &y));
        let rhs = vecops::add(&m.matvec(&x), &m.matvec(&y));
        assert!(vecops::approx_eq(&lhs, &rhs, 1e-6), "seed {seed}");
    }
}

#[test]
fn transpose_is_involution() {
    for seed in 0..CASES {
        let mut rng = RainRng::seed_from_u64(seed);
        let m = Matrix::from_vec(3, 4, rand_vec(&mut rng, 12, -10.0, 10.0));
        assert_eq!(m.transpose().transpose(), m, "seed {seed}");
    }
}

#[test]
fn matvec_t_agrees_with_explicit_transpose() {
    for seed in 0..CASES {
        let mut rng = RainRng::seed_from_u64(seed);
        let m = Matrix::from_vec(4, 5, rand_vec(&mut rng, 20, -10.0, 10.0));
        let x = rand_vec(&mut rng, 4, -100.0, 100.0);
        assert!(
            vecops::approx_eq(&m.matvec_t(&x), &m.transpose().matvec(&x), 1e-8),
            "seed {seed}"
        );
    }
}

#[test]
fn spd_solve_roundtrip() {
    for seed in 0..CASES {
        let mut rng = RainRng::seed_from_u64(seed);
        // A = MᵀM + I is always SPD.
        let m = Matrix::from_vec(3, 3, rand_vec(&mut rng, 9, -3.0, 3.0));
        let b = rand_vec(&mut rng, 3, -100.0, 100.0);
        let mut a = m.transpose().matmul(&m);
        for i in 0..3 {
            a.set(i, i, a.get(i, i) + 1.0);
        }
        let x = a.solve_spd(&b).expect("SPD");
        assert!(vecops::approx_eq(&a.matvec(&x), &b, 1e-6), "seed {seed}");
    }
}

#[test]
fn softmax_normalizes() {
    for seed in 0..CASES {
        let mut rng = RainRng::seed_from_u64(seed);
        let xs = rand_vec(&mut rng, 6, -100.0, 100.0);
        let p = stats::softmax(&xs);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9, "seed {seed}");
        assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)), "seed {seed}");
    }
}

#[test]
fn kahan_matches_naive_for_benign_inputs() {
    for seed in 0..CASES {
        let mut rng = RainRng::seed_from_u64(seed);
        let xs = rand_vec(&mut rng, 64, -100.0, 100.0);
        let naive: f64 = xs.iter().sum();
        assert!((stats::kahan_sum(&xs) - naive).abs() < 1e-6, "seed {seed}");
    }
}
