//! `rain-obs` — std-only observability: spans/traces and metrics.
//!
//! Two halves, both dependency-free and thread-safe:
//!
//! - [`trace`]: an RAII span API ([`Span::enter`] / [`Span::enter_under`])
//!   over monotonic clocks with a global atomic enable switch. Disabled
//!   spans cost one relaxed load and a branch — cheap enough to leave
//!   compiled into every operator of the query pipeline. Enabled spans
//!   record into a bounded global buffer; a consumer wraps its work in a
//!   root span and harvests exactly that subtree with [`take_subtree`],
//!   so concurrent traces don't bleed into each other.
//! - [`metrics`]: a [`Registry`] of named [`Counter`]s, [`Gauge`]s and
//!   fixed-bucket [`Histogram`]s with lock-free updates, rendered in
//!   Prometheus text exposition format (served by `rain-serve` at
//!   `GET /metrics`) and re-parseable via [`parse_exposition`].
//!
//! The serve layer turns harvested [`TraceNode`] trees into the JSON
//! profiles returned by `?profile=1` debug runs and `EXPLAIN ANALYZE`
//! queries; `rain-core` attaches them to `DebugReport`s.

pub mod metrics;
pub mod trace;

pub use metrics::{
    parse_exposition, Counter, Gauge, Histogram, HistogramSnapshot, Metric, Registry, Sample,
    LATENCY_BUCKETS_S,
};
pub use trace::{
    activate, clear, dropped_records, enabled, set_enabled, take_subtree, ActiveTrace, Span,
    SpanId, TraceNode, MAX_RECORDS,
};
