//! `rain-obs` — std-only observability: spans/traces, metrics, sketches.
//!
//! Three halves, all dependency-free and thread-safe:
//!
//! - [`trace`]: an RAII span API ([`Span::enter`] / [`Span::enter_under`])
//!   over monotonic clocks with a global atomic enable switch. Disabled
//!   spans cost one relaxed load and a branch — cheap enough to leave
//!   compiled into every operator of the query pipeline. Enabled spans
//!   record into bounded per-thread shards (writers never contend on a
//!   shared lock); a consumer wraps its work in a root span and harvests
//!   exactly that subtree with [`take_subtree`], stitched into a
//!   deterministic `(start, id)`-ordered tree, so concurrent traces
//!   don't bleed into each other.
//! - [`metrics`]: a [`Registry`] of named [`Counter`]s, [`Gauge`]s,
//!   fixed-bucket [`Histogram`]s and quantile [`Sketch`]es (optionally
//!   labeled, e.g. per-endpoint) with lock-free updates, rendered in
//!   Prometheus text exposition format (served by `rain-serve` at
//!   `GET /metrics`) and re-parseable via [`parse_exposition`].
//! - [`sketch`]: the HDR-style log-bucketed latency [`Sketch`] backing
//!   the registry's `summary` families — p50/p95/p99/p999 within ~2%
//!   relative error, mergeable across shards.
//!
//! The serve layer turns harvested [`TraceNode`] trees into the JSON
//! profiles returned by `?profile=1` debug runs, `EXPLAIN ANALYZE`
//! queries, and the always-on sampled profile ring at
//! `GET /debug/profiles`; `rain-core` attaches them to `DebugReport`s.

pub mod metrics;
pub mod sketch;
pub mod trace;

pub use metrics::{
    parse_exposition, Counter, Gauge, Histogram, HistogramSnapshot, Metric, Registry, Sample,
    LATENCY_BUCKETS_S,
};
pub use sketch::{
    Sketch, SketchSnapshot, SKETCH_GAMMA, SKETCH_MIN, SKETCH_REL_ERROR, SLO_QUANTILES,
};
pub use trace::{
    activate, buffered_records, clear, dropped_records, enabled, set_enabled, take_subtree,
    ActiveTrace, Span, SpanId, TraceNode, MAX_RECORDS,
};
