//! HDR-style log-bucketed latency sketch with accurate tail quantiles.
//!
//! A [`Sketch`] replaces a fixed-bucket histogram where the question is
//! "what is p99?" rather than "how many requests were faster than 10ms?".
//! Buckets grow geometrically by [`SKETCH_GAMMA`] from [`SKETCH_MIN`]
//! seconds, which bounds the *relative* error of every quantile estimate
//! by `(γ-1)/(γ+1)` (≈2% at γ=1.04) uniformly from p50 to p999 — a
//! fixed-bucket histogram is exact only at its hand-picked boundaries
//! and unboundedly wrong between them.
//!
//! The hot path is identical in cost to the fixed-bucket histogram:
//! one `ln` to pick the bucket, one relaxed `fetch_add`, one CAS-looped
//! sum update. Sketches with the same constants (all of them — the
//! layout is fixed at compile time) merge bucketwise, so per-shard or
//! per-endpoint sketches fold into totals exactly: `merge(a, b)` yields
//! the same quantiles as observing the concatenated stream.
//!
//! [`SketchSnapshot`] is the plain-data view used for rendering (the
//! registry exposes sketches as Prometheus `summary` families with
//! `quantile` labels) and for merging.

use std::sync::atomic::{AtomicU64, Ordering};

/// Smallest distinguishable value, in seconds (1µs); everything at or
/// below lands in bucket 0.
pub const SKETCH_MIN: f64 = 1e-6;

/// Geometric bucket growth factor. Relative quantile error is bounded by
/// `(γ-1)/(γ+1)` ≈ 1.96%.
pub const SKETCH_GAMMA: f64 = 1.04;

/// Worst-case relative error of a quantile estimate.
pub const SKETCH_REL_ERROR: f64 = (SKETCH_GAMMA - 1.0) / (SKETCH_GAMMA + 1.0);

/// Bucket count: covers [`SKETCH_MIN`] up to ~4.5 hours (`1e-6 ·
/// 1.04^599`); the last bucket catches overflow.
pub const SKETCH_BUCKETS: usize = 600;

/// Default quantiles exposed on `/metrics` and `/stats`.
pub const SLO_QUANTILES: [f64; 4] = [0.5, 0.95, 0.99, 0.999];

#[inline]
fn ln_gamma() -> f64 {
    // Not a const fn in std; cheap enough to recompute (one ln).
    SKETCH_GAMMA.ln()
}

/// Bucket index for a value: 0 for `v <= SKETCH_MIN`, else
/// `⌊ln(v/MIN)/ln γ⌋ + 1`, clamped into the overflow bucket.
#[inline]
fn bucket_index(v: f64) -> usize {
    if v.is_nan() || v <= SKETCH_MIN {
        // NaN and negatives also land here rather than poisoning state.
        return 0;
    }
    let i = ((v / SKETCH_MIN).ln() / ln_gamma()).floor() as usize + 1;
    i.min(SKETCH_BUCKETS - 1)
}

/// Representative value reported for bucket `i` — the point minimizing
/// worst-case relative error within the bucket (`2γ^i/(γ+1) · MIN`).
#[inline]
fn bucket_value(i: usize) -> f64 {
    if i == 0 {
        return SKETCH_MIN;
    }
    SKETCH_MIN * SKETCH_GAMMA.powi(i as i32) * 2.0 / (SKETCH_GAMMA + 1.0)
}

/// Concurrent log-bucketed quantile sketch. All updates are lock-free.
#[derive(Debug)]
pub struct Sketch {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_bits: AtomicU64,
}

impl Default for Sketch {
    fn default() -> Sketch {
        Sketch::new()
    }
}

impl Sketch {
    /// Empty sketch.
    pub fn new() -> Sketch {
        Sketch {
            buckets: (0..SKETCH_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// Record one observation (seconds).
    pub fn observe(&self, v: f64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let new = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                new,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Estimated `q`-quantile (`0 < q <= 1`), within
    /// [`SKETCH_REL_ERROR`] relative error; `NaN` when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        self.snapshot().quantile(q)
    }

    /// Point-in-time copy; a scrape racing `observe` may be off by the
    /// in-flight observations, never corrupted.
    pub fn snapshot(&self) -> SketchSnapshot {
        SketchSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            sum: f64::from_bits(self.sum_bits.load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
        }
    }
}

/// Plain-data copy of a [`Sketch`]; mergeable (the bucket layout is the
/// same for every sketch).
#[derive(Debug, Clone, PartialEq)]
pub struct SketchSnapshot {
    /// Per-bucket counts, [`SKETCH_BUCKETS`] entries.
    pub buckets: Vec<u64>,
    /// Sum of all observed values.
    pub sum: f64,
    /// Number of observations.
    pub count: u64,
}

impl SketchSnapshot {
    /// Fold `other` into `self`. Quantiles of the merge equal quantiles
    /// of the concatenated observation stream.
    pub fn merge(&mut self, other: &SketchSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.sum += other.sum;
        self.count += other.count;
    }

    /// Estimated `q`-quantile; `NaN` when the sketch is empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return f64::NAN;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_value(i);
            }
        }
        bucket_value(SKETCH_BUCKETS - 1)
    }

    /// Mean of all observations; `NaN` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return f64::NAN;
        }
        self.sum / self.count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(est: f64, truth: f64, tol: f64) -> bool {
        (est - truth).abs() <= tol * truth.abs()
    }

    // A hair above the theoretical bound to absorb float rounding in the
    // bucket-index ln.
    const TOL: f64 = SKETCH_REL_ERROR * 1.1;

    #[test]
    fn quantiles_of_a_uniform_stream_hit_the_error_bound() {
        let s = Sketch::new();
        let n = 100_000;
        for i in 1..=n {
            // Uniform 1µs .. 100ms.
            s.observe(i as f64 * 1e-7);
        }
        for q in SLO_QUANTILES {
            let truth = q * n as f64 * 1e-7;
            let est = s.quantile(q);
            assert!(
                close(est, truth, TOL),
                "q={q}: est={est} truth={truth} rel={}",
                (est - truth).abs() / truth
            );
        }
    }

    #[test]
    fn quantiles_of_a_heavy_tail_stay_accurate_at_p999() {
        // 99.9% fast (1ms), 0.1% slow (2s): p99 must report the fast
        // mode, p999 the slow one — exactly what fixed buckets blur.
        let s = Sketch::new();
        for i in 0..100_000u32 {
            s.observe(if i % 1000 == 999 { 2.0 } else { 0.001 });
        }
        assert!(close(s.quantile(0.5), 0.001, TOL));
        assert!(close(s.quantile(0.99), 0.001, TOL));
        assert!(close(s.quantile(0.9995), 2.0, TOL));
    }

    #[test]
    fn merge_equals_the_concatenated_stream() {
        let a = Sketch::new();
        let b = Sketch::new();
        let all = Sketch::new();
        let mut x = 0x9e3779b97f4a7c15u64;
        for i in 0..50_000u64 {
            // Cheap xorshift for a spread of magnitudes.
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let v = 1e-6 * (1.0 + (x % 1_000_000) as f64);
            (if i % 2 == 0 { &a } else { &b }).observe(v);
            all.observe(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.count, all.count());
        assert!((merged.sum - all.snapshot().sum).abs() < 1e-6 * merged.sum.abs());
        for q in [0.1, 0.5, 0.9, 0.95, 0.99, 0.999] {
            // Identical bucket counts → bit-identical quantiles.
            assert_eq!(merged.quantile(q), all.quantile(q), "q={q}");
        }
    }

    #[test]
    fn edge_cases_do_not_poison_the_sketch() {
        let s = Sketch::new();
        s.observe(0.0);
        s.observe(-1.0);
        s.observe(f64::NAN);
        s.observe(1e9); // overflow bucket
        assert_eq!(s.count(), 4);
        assert_eq!(s.quantile(0.25), SKETCH_MIN);
        assert!(s.quantile(1.0) >= bucket_value(SKETCH_BUCKETS - 1));
        assert!(Sketch::new().quantile(0.5).is_nan());
    }

    #[test]
    fn concurrent_observes_are_not_lost() {
        let s = std::sync::Arc::new(Sketch::new());
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let s = std::sync::Arc::clone(&s);
                scope.spawn(move || {
                    for _ in 0..1000 {
                        s.observe(0.25);
                    }
                });
            }
        });
        let snap = s.snapshot();
        assert_eq!(snap.count, 8000);
        assert!((snap.sum - 2000.0).abs() < 1e-6);
        assert!(close(snap.quantile(0.5), 0.25, TOL));
    }
}
