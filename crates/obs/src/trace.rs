//! Lightweight spans with near-zero disabled cost and sharded collection.
//!
//! A [`Span`] is an RAII guard around a region of work: [`Span::enter`]
//! stamps a monotonic start time ([`Instant`]), `Drop` records the
//! duration plus any counters attached with [`Span::add`] into a
//! **per-thread shard**. Recording is gated by one global switch read
//! with a single `Relaxed` atomic load — when tracing is off, `enter`
//! costs a load and a branch and allocates nothing, so instrumentation
//! can stay compiled into every hot path (the `benches/obs.rs` gate holds
//! the *enabled* overhead under 5% on the DBLP join; disabled overhead is
//! not measurable).
//!
//! ## Sharded collection
//!
//! Each recording thread owns a shard (a small mutexed `Vec` it alone
//! writes) registered once in a global shard list. Concurrent cached
//! queries and morsel workers therefore never contend on a shared lock:
//! a span drop locks only its own thread's shard. Harvesting
//! ([`take_subtree`]) locks the shard list plus every shard, stitches
//! the claimed records into one tree, and removes exactly those records
//! — records belonging to other in-flight traces stay where they are.
//! Shards of exited threads are drained and pruned on the next harvest,
//! so short-lived worker threads don't leak. The total buffered record
//! count is bounded across all shards ([`MAX_RECORDS`]); records past
//! the cap are dropped (counted, never blocking).
//!
//! Stitching is deterministic: children sort by `(start_ns, span id)`,
//! not by buffer arrival order, so a harvested tree is stable no matter
//! which worker thread flushed first.
//!
//! Parentage is tracked per thread: `enter` nests under the innermost
//! live span on the calling thread. Worker threads (morsel scans, refresh
//! inference shards) don't inherit the spawner's stack, so they attach
//! explicitly with [`Span::enter_under`], passing the parent's
//! [`Span::id`] into the closure. Multiple concurrent traces coexist:
//! each consumer wraps its work in a root span and harvests exactly that
//! subtree with [`take_subtree`].
//!
//! Enablement composes: [`set_enabled`] flips a process-wide switch (used
//! by benches), while [`activate`] returns a guard for scoped enablement
//! (used by `?profile=1` runs, sampled serve-layer profiles, and
//! `EXPLAIN ANALYZE`) — tracing records whenever either is on.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Instant;

/// Identifier of a recorded span; `0` means "no span" (disabled or root).
pub type SpanId = u64;

/// Cap on buffered span records, summed across all shards; pushes past it
/// are dropped (counted by [`dropped_records`]) so an unharvested trace
/// can never grow unbounded.
pub const MAX_RECORDS: usize = 1 << 16;

static FORCED: AtomicBool = AtomicBool::new(false);
static ACTIVE: AtomicUsize = AtomicUsize::new(0);
static NEXT_ID: AtomicU64 = AtomicU64::new(1);
static DROPPED: AtomicU64 = AtomicU64::new(0);
/// Records currently buffered across every shard (the [`MAX_RECORDS`]
/// budget). Reserved with a `fetch_add` before the shard push so the cap
/// holds without any cross-shard lock.
static BUFFERED: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static STACK: RefCell<Vec<SpanId>> = const { RefCell::new(Vec::new()) };
    /// This thread's shard; lazily created and registered on first record,
    /// dropped (leaving the registry's Arc as sole owner) at thread exit.
    static LOCAL: RefCell<Option<Arc<Shard>>> = const { RefCell::new(None) };
}

/// Process-wide monotonic epoch; span start times are offsets from it.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

#[derive(Debug, Clone)]
struct Rec {
    id: SpanId,
    parent: SpanId,
    name: &'static str,
    start_ns: u64,
    dur_ns: u64,
    counters: Vec<(&'static str, u64)>,
}

/// One thread's record buffer. Only its owner thread pushes; harvesters
/// lock it to drain, so writer contention is zero in steady state.
#[derive(Debug, Default)]
struct Shard {
    recs: Mutex<Vec<Rec>>,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// All live (and recently-exited, not-yet-pruned) shards. Writers touch
/// this once per thread lifetime, at registration.
fn registry() -> &'static Mutex<Vec<Arc<Shard>>> {
    static R: OnceLock<Mutex<Vec<Arc<Shard>>>> = OnceLock::new();
    R.get_or_init(|| Mutex::new(Vec::new()))
}

/// This thread's shard, creating and registering it on first use.
fn local_shard() -> Arc<Shard> {
    LOCAL.with(|l| {
        let mut slot = l.borrow_mut();
        if let Some(s) = slot.as_ref() {
            return Arc::clone(s);
        }
        let s = Arc::new(Shard::default());
        lock(registry()).push(Arc::clone(&s));
        *slot = Some(Arc::clone(&s));
        s
    })
}

/// Force tracing on or off process-wide (benches, tests). Scoped
/// consumers should prefer [`activate`].
pub fn set_enabled(on: bool) {
    FORCED.store(on, Ordering::Relaxed);
}

/// True when spans record: the forced switch or any live [`ActiveTrace`].
#[inline]
pub fn enabled() -> bool {
    FORCED.load(Ordering::Relaxed) || ACTIVE.load(Ordering::Relaxed) > 0
}

/// RAII guard that keeps tracing enabled while alive; guards nest.
#[derive(Debug)]
pub struct ActiveTrace(());

/// Enable tracing for the lifetime of the returned guard.
pub fn activate() -> ActiveTrace {
    ACTIVE.fetch_add(1, Ordering::Relaxed);
    ActiveTrace(())
}

impl Drop for ActiveTrace {
    fn drop(&mut self) {
        ACTIVE.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Records dropped because the buffers were at [`MAX_RECORDS`].
pub fn dropped_records() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

/// Records currently buffered and unharvested, across all shards.
pub fn buffered_records() -> usize {
    BUFFERED.load(Ordering::Relaxed)
}

/// Drop every buffered record (tests and bench isolation).
pub fn clear() {
    let mut reg = lock(registry());
    let mut cleared = 0usize;
    for shard in reg.iter() {
        let mut recs = lock(&shard.recs);
        cleared += recs.len();
        recs.clear();
    }
    // Prune shards whose owning thread has exited (the registry holds the
    // only reference once the thread-local Arc dropped).
    reg.retain(|s| Arc::strong_count(s) > 1);
    BUFFERED.fetch_sub(cleared, Ordering::Relaxed);
    DROPPED.store(0, Ordering::Relaxed);
}

/// An in-flight span. Inert (no allocation, no clock read) when tracing
/// was disabled at `enter` time; its `Drop` then does nothing.
#[derive(Debug)]
pub struct Span {
    id: SpanId,
    parent: SpanId,
    name: &'static str,
    start: Option<Instant>,
    start_ns: u64,
    counters: Vec<(&'static str, u64)>,
}

impl Span {
    /// Open a span nested under the innermost live span on this thread.
    #[inline]
    pub fn enter(name: &'static str) -> Span {
        if !enabled() {
            return Span::inert(name);
        }
        let parent = STACK.with(|s| s.borrow().last().copied().unwrap_or(0));
        Span::open(name, parent)
    }

    /// Open a span under an explicit parent — for worker threads that
    /// don't share the spawner's thread-local span stack.
    #[inline]
    pub fn enter_under(parent: SpanId, name: &'static str) -> Span {
        if !enabled() {
            return Span::inert(name);
        }
        Span::open(name, parent)
    }

    fn inert(name: &'static str) -> Span {
        Span {
            id: 0,
            parent: 0,
            name,
            start: None,
            start_ns: 0,
            counters: Vec::new(),
        }
    }

    fn open(name: &'static str, parent: SpanId) -> Span {
        let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
        STACK.with(|s| s.borrow_mut().push(id));
        let ep = epoch();
        let now = Instant::now();
        Span {
            id,
            parent,
            name,
            start: Some(now),
            start_ns: now.duration_since(ep).as_nanos() as u64,
            counters: Vec::new(),
        }
    }

    /// This span's id (`0` when tracing was disabled at `enter` time) —
    /// pass into worker closures for [`Span::enter_under`].
    pub fn id(&self) -> SpanId {
        self.id
    }

    /// True when this span will record on drop.
    pub fn is_recording(&self) -> bool {
        self.start.is_some()
    }

    /// Attach a counter (e.g. `rows_in` / `rows_out`). No-op when inert.
    pub fn add(&mut self, key: &'static str, value: u64) {
        if self.start.is_some() {
            self.counters.push((key, value));
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let dur_ns = start.elapsed().as_nanos() as u64;
        STACK.with(|s| {
            let mut st = s.borrow_mut();
            if st.last() == Some(&self.id) {
                st.pop();
            } else if let Some(pos) = st.iter().rposition(|&x| x == self.id) {
                // Out-of-order drop (spans moved across an early return):
                // remove just this entry, keep the rest of the stack.
                st.remove(pos);
            }
        });
        // Reserve budget before touching the shard; undo on overflow so
        // the global cap holds without a cross-shard lock.
        if BUFFERED.fetch_add(1, Ordering::Relaxed) >= MAX_RECORDS {
            BUFFERED.fetch_sub(1, Ordering::Relaxed);
            DROPPED.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let shard = local_shard();
        lock(&shard.recs).push(Rec {
            id: self.id,
            parent: self.parent,
            name: self.name,
            start_ns: self.start_ns,
            dur_ns,
            counters: std::mem::take(&mut self.counters),
        });
    }
}

/// One node of a harvested trace tree. Times are nanoseconds; `start_ns`
/// is relative to the tree's root start, so a tree is self-contained.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceNode {
    /// Span name (`"scan"`, `"morsel"`, `"refresh"`, ...).
    pub name: &'static str,
    /// Start offset from the root span's start, in nanoseconds.
    pub start_ns: u64,
    /// Wall-clock duration in nanoseconds.
    pub dur_ns: u64,
    /// Counters attached with [`Span::add`], in attach order.
    pub counters: Vec<(&'static str, u64)>,
    /// Child spans, ordered by `(start_ns, span id)` — deterministic even
    /// when concurrent workers flushed to different shards in any order.
    pub children: Vec<TraceNode>,
}

impl TraceNode {
    /// Total number of nodes in this subtree, the root included.
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(TraceNode::size).sum::<usize>()
    }

    /// Depth-first search for the first node named `name`.
    pub fn find(&self, name: &str) -> Option<&TraceNode> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }
}

/// Harvest the subtree rooted at `root` (a [`Span::id`] whose span has
/// already dropped): claimed records are removed from the shards they
/// landed in, records belonging to other traces stay. Returns `None`
/// when `root` is `0` or was never recorded (tracing disabled, or the
/// buffer cap dropped it).
///
/// Concurrent harvesters serialize on the shard list; each claims a
/// disjoint subtree, so two drains never lose or duplicate a record.
pub fn take_subtree(root: SpanId) -> Option<TraceNode> {
    if root == 0 {
        return None;
    }
    let mut reg = lock(registry());
    // Hold every shard lock for the whole claim so the view is consistent
    // (children complete — and record — before their parent, so once the
    // root is visible the full subtree is too).
    let mut guards: Vec<MutexGuard<'_, Vec<Rec>>> = reg.iter().map(|s| lock(&s.recs)).collect();
    let root_pos = guards
        .iter()
        .enumerate()
        .find_map(|(si, g)| g.iter().position(|r| r.id == root).map(|ri| (si, ri)))?;
    let mut kids: HashMap<SpanId, Vec<(usize, usize)>> = HashMap::new();
    for (si, g) in guards.iter().enumerate() {
        for (ri, r) in g.iter().enumerate() {
            kids.entry(r.parent).or_default().push((si, ri));
        }
    }
    let mut claimed: Vec<(usize, usize)> = vec![root_pos];
    let mut frontier = vec![root];
    while let Some(id) = frontier.pop() {
        for &(si, ri) in kids.get(&id).into_iter().flatten() {
            claimed.push((si, ri));
            frontier.push(guards[si][ri].id);
        }
    }
    let taken: Vec<Rec> = claimed
        .iter()
        .map(|&(si, ri)| guards[si][ri].clone())
        .collect();
    // Remove the claimed records shard by shard (position masks — indices
    // stay valid because nothing else can mutate under our guards).
    let mut masks: Vec<Vec<bool>> = guards.iter().map(|g| vec![true; g.len()]).collect();
    for &(si, ri) in &claimed {
        masks[si][ri] = false;
    }
    for (g, mask) in guards.iter_mut().zip(&masks) {
        let mut idx = 0;
        g.retain(|_| {
            let keep = mask[idx];
            idx += 1;
            keep
        });
    }
    BUFFERED.fetch_sub(taken.len(), Ordering::Relaxed);
    drop(guards);
    // Prune shards of exited threads once drained: the registry's Arc is
    // the only reference left and the shard is empty.
    reg.retain(|s| Arc::strong_count(s) > 1 || !lock(&s.recs).is_empty());
    drop(reg);

    Some(build_tree(taken))
}

/// Stitch a flat claimed record set into a tree. Children are ordered by
/// `(start_ns, id)`: start-tick first, span id as the tie-break, so the
/// result is independent of which shard (thread) flushed first.
fn build_tree(taken: Vec<Rec>) -> TraceNode {
    let root_start = taken[0].start_ns;
    let mut children: HashMap<SpanId, Vec<&Rec>> = HashMap::new();
    for r in taken.iter().skip(1) {
        children.entry(r.parent).or_default().push(r);
    }
    fn build(r: &Rec, root_start: u64, children: &HashMap<SpanId, Vec<&Rec>>) -> TraceNode {
        let mut kids: Vec<&Rec> = children.get(&r.id).into_iter().flatten().copied().collect();
        kids.sort_by_key(|c| (c.start_ns, c.id));
        TraceNode {
            name: r.name,
            start_ns: r.start_ns.saturating_sub(root_start),
            dur_ns: r.dur_ns,
            counters: r.counters.clone(),
            children: kids
                .into_iter()
                .map(|c| build(c, root_start, children))
                .collect(),
        }
    }
    build(&taken[0], root_start, &children)
}

#[cfg(test)]
mod tests {
    use super::*;

    // Trace tests share the global shard registry; run under one lock so
    // parallel test threads don't interleave spans.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static L: Mutex<()> = Mutex::new(());
        L.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn disabled_spans_are_inert_and_record_nothing() {
        let _g = serial();
        assert!(!enabled());
        let mut s = Span::enter("noop");
        s.add("rows", 5);
        assert_eq!(s.id(), 0);
        assert!(!s.is_recording());
        drop(s);
        assert!(take_subtree(1).is_none());
        assert!(take_subtree(0).is_none());
    }

    #[test]
    fn nested_spans_build_a_tree_with_counters() {
        let _g = serial();
        clear();
        let t = activate();
        let root_id;
        {
            let root = Span::enter("root");
            root_id = root.id();
            {
                let mut a = Span::enter("a");
                a.add("rows_in", 10);
                a.add("rows_out", 7);
                let _a1 = Span::enter("a1");
            }
            let _b = Span::enter("b");
        }
        drop(t);
        let tree = take_subtree(root_id).expect("root recorded");
        assert_eq!(tree.name, "root");
        assert_eq!(tree.size(), 4);
        assert_eq!(tree.children.len(), 2);
        assert_eq!(tree.children[0].name, "a");
        assert_eq!(tree.children[1].name, "b");
        let a = tree.find("a").unwrap();
        assert_eq!(a.counters, vec![("rows_in", 10), ("rows_out", 7)]);
        assert_eq!(a.children[0].name, "a1");
        assert!(tree.dur_ns >= a.dur_ns);
        // The subtree was drained: a second take finds nothing.
        assert!(take_subtree(root_id).is_none());
        assert_eq!(buffered_records(), 0);
    }

    #[test]
    fn enter_under_attaches_worker_spans_to_an_explicit_parent() {
        let _g = serial();
        clear();
        let t = activate();
        let root = Span::enter("root");
        let rid = root.id();
        std::thread::scope(|s| {
            for i in 0..3u64 {
                s.spawn(move || {
                    let mut m = Span::enter_under(rid, "morsel");
                    m.add("items", i);
                });
            }
        });
        drop(root);
        drop(t);
        let tree = take_subtree(rid).unwrap();
        assert_eq!(tree.children.len(), 3);
        assert!(tree.children.iter().all(|c| c.name == "morsel"));
    }

    #[test]
    fn concurrent_traces_harvest_their_own_subtrees() {
        let _g = serial();
        clear();
        let t = activate();
        let (r1, r2);
        {
            let a = Span::enter("trace-a");
            r1 = a.id();
            let _c = Span::enter("child-a");
        }
        {
            let b = Span::enter("trace-b");
            r2 = b.id();
            let _c = Span::enter("child-b");
        }
        drop(t);
        let ta = take_subtree(r1).unwrap();
        assert_eq!(ta.size(), 2);
        assert!(ta.find("child-b").is_none());
        let tb = take_subtree(r2).unwrap();
        assert_eq!(tb.find("child-b").unwrap().name, "child-b");
    }

    #[test]
    fn worker_threads_record_into_their_own_shards() {
        let _g = serial();
        clear();
        let t = activate();
        let root = Span::enter("root");
        let rid = root.id();
        let shards_before = lock(registry()).len();
        // Plain spawn + join (join waits for full thread exit, so the
        // workers' thread-local shard handles have been dropped too).
        let handles: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(move || {
                    let _m = Span::enter_under(rid, "w");
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // Each worker registered its own shard.
        assert!(lock(registry()).len() >= shards_before + 4);
        drop(root);
        drop(t);
        let tree = take_subtree(rid).unwrap();
        assert_eq!(tree.children.len(), 4);
        // The workers exited and their shards drained: harvest pruned them.
        assert!(lock(registry()).len() <= shards_before + 1);
    }

    #[test]
    fn stitching_orders_children_by_start_then_id_across_shards() {
        let _g = serial();
        clear();
        let t = activate();
        let root = Span::enter("root");
        let rid = root.id();
        // Sequential worker threads: each lands in a different shard, and
        // arrival order at the registry differs from start order only if
        // stitching were arrival-dependent — spans here strictly increase
        // in both start tick and id, so the harvested order must match
        // spawn order regardless of shard layout.
        for i in 0..6u64 {
            std::thread::scope(|s| {
                s.spawn(move || {
                    let mut m = Span::enter_under(rid, "step");
                    m.add("i", i);
                });
            });
        }
        drop(root);
        drop(t);
        let tree = take_subtree(rid).unwrap();
        let order: Vec<u64> = tree
            .children
            .iter()
            .map(|c| c.counters.iter().find(|(k, _)| *k == "i").unwrap().1)
            .collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4, 5]);
        assert!(tree
            .children
            .windows(2)
            .all(|w| w[0].start_ns <= w[1].start_ns));
    }

    #[test]
    fn buffer_cap_holds_across_shards() {
        let _g = serial();
        clear();
        let t = activate();
        // Record the root up front so the flood below can't evict it.
        let root = Span::enter("cap-root");
        let rid = root.id();
        drop(root);
        let n_threads = 4;
        let per_thread = MAX_RECORDS / n_threads + 64;
        std::thread::scope(|s| {
            for _ in 0..n_threads {
                s.spawn(move || {
                    for _ in 0..per_thread {
                        let _x = Span::enter_under(rid, "x");
                    }
                });
            }
        });
        drop(t);
        assert!(buffered_records() <= MAX_RECORDS);
        assert!(dropped_records() > 0);
        let tree = take_subtree(rid).expect("root survived the cap");
        assert!(tree.size() <= MAX_RECORDS);
        clear();
        assert_eq!(buffered_records(), 0);
    }
}
