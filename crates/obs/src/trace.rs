//! Lightweight spans with near-zero disabled cost.
//!
//! A [`Span`] is an RAII guard around a region of work: [`Span::enter`]
//! stamps a monotonic start time ([`Instant`]), `Drop` records the
//! duration plus any counters attached with [`Span::add`] into a global,
//! thread-safe collector. Recording is gated by one global switch read
//! with a single `Relaxed` atomic load — when tracing is off, `enter`
//! costs a load and a branch and allocates nothing, so instrumentation
//! can stay compiled into every hot path (the `benches/obs.rs` gate holds
//! the *enabled* overhead under 5% on the DBLP join; disabled overhead is
//! not measurable).
//!
//! Parentage is tracked per thread: `enter` nests under the innermost
//! live span on the calling thread. Worker threads (morsel scans, refresh
//! inference shards) don't inherit the spawner's stack, so they attach
//! explicitly with [`Span::enter_under`], passing the parent's
//! [`Span::id`] into the closure. Multiple concurrent traces coexist:
//! each consumer wraps its work in a root span and harvests exactly that
//! subtree with [`take_subtree`], which drains the records it claims and
//! leaves the rest. The buffer is bounded ([`MAX_RECORDS`]); records past
//! the cap are dropped (counted, never blocking).
//!
//! Enablement composes: [`set_enabled`] flips a process-wide switch (used
//! by benches), while [`activate`] returns a guard for scoped enablement
//! (used by `?profile=1` runs and `EXPLAIN ANALYZE`) — tracing records
//! whenever either is on.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Identifier of a recorded span; `0` means "no span" (disabled or root).
pub type SpanId = u64;

/// Cap on buffered span records; pushes past it are dropped (counted by
/// [`dropped_records`]) so an unharvested trace can never grow unbounded.
pub const MAX_RECORDS: usize = 1 << 16;

static FORCED: AtomicBool = AtomicBool::new(false);
static ACTIVE: AtomicUsize = AtomicUsize::new(0);
static NEXT_ID: AtomicU64 = AtomicU64::new(1);
static DROPPED: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static STACK: RefCell<Vec<SpanId>> = const { RefCell::new(Vec::new()) };
}

/// Process-wide monotonic epoch; span start times are offsets from it.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

#[derive(Debug, Clone)]
struct Rec {
    id: SpanId,
    parent: SpanId,
    name: &'static str,
    start_ns: u64,
    dur_ns: u64,
    counters: Vec<(&'static str, u64)>,
}

fn collector() -> &'static Mutex<Vec<Rec>> {
    static C: OnceLock<Mutex<Vec<Rec>>> = OnceLock::new();
    C.get_or_init(|| Mutex::new(Vec::new()))
}

fn lock_collector() -> std::sync::MutexGuard<'static, Vec<Rec>> {
    collector().lock().unwrap_or_else(|p| p.into_inner())
}

/// Force tracing on or off process-wide (benches, tests). Scoped
/// consumers should prefer [`activate`].
pub fn set_enabled(on: bool) {
    FORCED.store(on, Ordering::Relaxed);
}

/// True when spans record: the forced switch or any live [`ActiveTrace`].
#[inline]
pub fn enabled() -> bool {
    FORCED.load(Ordering::Relaxed) || ACTIVE.load(Ordering::Relaxed) > 0
}

/// RAII guard that keeps tracing enabled while alive; guards nest.
#[derive(Debug)]
pub struct ActiveTrace(());

/// Enable tracing for the lifetime of the returned guard.
pub fn activate() -> ActiveTrace {
    ACTIVE.fetch_add(1, Ordering::Relaxed);
    ActiveTrace(())
}

impl Drop for ActiveTrace {
    fn drop(&mut self) {
        ACTIVE.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Records dropped because the buffer was at [`MAX_RECORDS`].
pub fn dropped_records() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

/// Drop every buffered record (tests and bench isolation).
pub fn clear() {
    lock_collector().clear();
    DROPPED.store(0, Ordering::Relaxed);
}

/// An in-flight span. Inert (no allocation, no clock read) when tracing
/// was disabled at `enter` time; its `Drop` then does nothing.
#[derive(Debug)]
pub struct Span {
    id: SpanId,
    parent: SpanId,
    name: &'static str,
    start: Option<Instant>,
    start_ns: u64,
    counters: Vec<(&'static str, u64)>,
}

impl Span {
    /// Open a span nested under the innermost live span on this thread.
    #[inline]
    pub fn enter(name: &'static str) -> Span {
        if !enabled() {
            return Span::inert(name);
        }
        let parent = STACK.with(|s| s.borrow().last().copied().unwrap_or(0));
        Span::open(name, parent)
    }

    /// Open a span under an explicit parent — for worker threads that
    /// don't share the spawner's thread-local span stack.
    #[inline]
    pub fn enter_under(parent: SpanId, name: &'static str) -> Span {
        if !enabled() {
            return Span::inert(name);
        }
        Span::open(name, parent)
    }

    fn inert(name: &'static str) -> Span {
        Span {
            id: 0,
            parent: 0,
            name,
            start: None,
            start_ns: 0,
            counters: Vec::new(),
        }
    }

    fn open(name: &'static str, parent: SpanId) -> Span {
        let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
        STACK.with(|s| s.borrow_mut().push(id));
        let ep = epoch();
        let now = Instant::now();
        Span {
            id,
            parent,
            name,
            start: Some(now),
            start_ns: now.duration_since(ep).as_nanos() as u64,
            counters: Vec::new(),
        }
    }

    /// This span's id (`0` when tracing was disabled at `enter` time) —
    /// pass into worker closures for [`Span::enter_under`].
    pub fn id(&self) -> SpanId {
        self.id
    }

    /// True when this span will record on drop.
    pub fn is_recording(&self) -> bool {
        self.start.is_some()
    }

    /// Attach a counter (e.g. `rows_in` / `rows_out`). No-op when inert.
    pub fn add(&mut self, key: &'static str, value: u64) {
        if self.start.is_some() {
            self.counters.push((key, value));
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let dur_ns = start.elapsed().as_nanos() as u64;
        STACK.with(|s| {
            let mut st = s.borrow_mut();
            if st.last() == Some(&self.id) {
                st.pop();
            } else if let Some(pos) = st.iter().rposition(|&x| x == self.id) {
                // Out-of-order drop (spans moved across an early return):
                // remove just this entry, keep the rest of the stack.
                st.remove(pos);
            }
        });
        let mut buf = lock_collector();
        if buf.len() >= MAX_RECORDS {
            DROPPED.fetch_add(1, Ordering::Relaxed);
            return;
        }
        buf.push(Rec {
            id: self.id,
            parent: self.parent,
            name: self.name,
            start_ns: self.start_ns,
            dur_ns,
            counters: std::mem::take(&mut self.counters),
        });
    }
}

/// One node of a harvested trace tree. Times are nanoseconds; `start_ns`
/// is relative to the tree's root start, so a tree is self-contained.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceNode {
    /// Span name (`"scan"`, `"morsel"`, `"refresh"`, ...).
    pub name: &'static str,
    /// Start offset from the root span's start, in nanoseconds.
    pub start_ns: u64,
    /// Wall-clock duration in nanoseconds.
    pub dur_ns: u64,
    /// Counters attached with [`Span::add`], in attach order.
    pub counters: Vec<(&'static str, u64)>,
    /// Child spans in start order.
    pub children: Vec<TraceNode>,
}

impl TraceNode {
    /// Total number of nodes in this subtree, the root included.
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(TraceNode::size).sum::<usize>()
    }

    /// Depth-first search for the first node named `name`.
    pub fn find(&self, name: &str) -> Option<&TraceNode> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }
}

/// Harvest the subtree rooted at `root` (a [`Span::id`] whose span has
/// already dropped): claimed records are removed from the buffer, records
/// belonging to other traces stay. Returns `None` when `root` is `0` or
/// was never recorded (tracing disabled, or the buffer cap dropped it).
pub fn take_subtree(root: SpanId) -> Option<TraceNode> {
    if root == 0 {
        return None;
    }
    let mut buf = lock_collector();
    let root_idx = buf.iter().position(|r| r.id == root)?;
    // Children complete (and record) before their parent, so parent links
    // always resolve within the buffer once the root has dropped.
    let mut kids: HashMap<SpanId, Vec<usize>> = HashMap::new();
    for (i, r) in buf.iter().enumerate() {
        kids.entry(r.parent).or_default().push(i);
    }
    let mut claimed: Vec<usize> = vec![root_idx];
    let mut frontier = vec![root];
    while let Some(id) = frontier.pop() {
        for &i in kids.get(&id).into_iter().flatten() {
            claimed.push(i);
            frontier.push(buf[i].id);
        }
    }
    let mut keep_mask = vec![true; buf.len()];
    for &i in &claimed {
        keep_mask[i] = false;
    }
    let taken: Vec<Rec> = claimed.iter().map(|&i| buf[i].clone()).collect();
    let mut idx = 0;
    buf.retain(|_| {
        let keep = keep_mask[idx];
        idx += 1;
        keep
    });
    drop(buf);

    let root_start = taken[0].start_ns;
    let mut children: HashMap<SpanId, Vec<&Rec>> = HashMap::new();
    for r in taken.iter().skip(1) {
        children.entry(r.parent).or_default().push(r);
    }
    fn build(r: &Rec, root_start: u64, children: &HashMap<SpanId, Vec<&Rec>>) -> TraceNode {
        let mut kids: Vec<TraceNode> = children
            .get(&r.id)
            .into_iter()
            .flatten()
            .map(|c| build(c, root_start, children))
            .collect();
        kids.sort_by_key(|c| c.start_ns);
        TraceNode {
            name: r.name,
            start_ns: r.start_ns.saturating_sub(root_start),
            dur_ns: r.dur_ns,
            counters: r.counters.clone(),
            children: kids,
        }
    }
    Some(build(&taken[0], root_start, &children))
}

#[cfg(test)]
mod tests {
    use super::*;

    // Trace tests share the global collector; run under one lock so
    // parallel test threads don't interleave spans.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static L: Mutex<()> = Mutex::new(());
        L.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn disabled_spans_are_inert_and_record_nothing() {
        let _g = serial();
        assert!(!enabled());
        let mut s = Span::enter("noop");
        s.add("rows", 5);
        assert_eq!(s.id(), 0);
        assert!(!s.is_recording());
        drop(s);
        assert!(take_subtree(1).is_none());
        assert!(take_subtree(0).is_none());
    }

    #[test]
    fn nested_spans_build_a_tree_with_counters() {
        let _g = serial();
        clear();
        let t = activate();
        let root_id;
        {
            let root = Span::enter("root");
            root_id = root.id();
            {
                let mut a = Span::enter("a");
                a.add("rows_in", 10);
                a.add("rows_out", 7);
                let _a1 = Span::enter("a1");
            }
            let _b = Span::enter("b");
        }
        drop(t);
        let tree = take_subtree(root_id).expect("root recorded");
        assert_eq!(tree.name, "root");
        assert_eq!(tree.size(), 4);
        assert_eq!(tree.children.len(), 2);
        assert_eq!(tree.children[0].name, "a");
        assert_eq!(tree.children[1].name, "b");
        let a = tree.find("a").unwrap();
        assert_eq!(a.counters, vec![("rows_in", 10), ("rows_out", 7)]);
        assert_eq!(a.children[0].name, "a1");
        assert!(tree.dur_ns >= a.dur_ns);
        // The subtree was drained: a second take finds nothing.
        assert!(take_subtree(root_id).is_none());
    }

    #[test]
    fn enter_under_attaches_worker_spans_to_an_explicit_parent() {
        let _g = serial();
        clear();
        let t = activate();
        let root = Span::enter("root");
        let rid = root.id();
        std::thread::scope(|s| {
            for i in 0..3u64 {
                s.spawn(move || {
                    let mut m = Span::enter_under(rid, "morsel");
                    m.add("items", i);
                });
            }
        });
        drop(root);
        drop(t);
        let tree = take_subtree(rid).unwrap();
        assert_eq!(tree.children.len(), 3);
        assert!(tree.children.iter().all(|c| c.name == "morsel"));
    }

    #[test]
    fn concurrent_traces_harvest_their_own_subtrees() {
        let _g = serial();
        clear();
        let t = activate();
        let (r1, r2);
        {
            let a = Span::enter("trace-a");
            r1 = a.id();
            let _c = Span::enter("child-a");
        }
        {
            let b = Span::enter("trace-b");
            r2 = b.id();
            let _c = Span::enter("child-b");
        }
        drop(t);
        let ta = take_subtree(r1).unwrap();
        assert_eq!(ta.size(), 2);
        assert!(ta.find("child-b").is_none());
        let tb = take_subtree(r2).unwrap();
        assert_eq!(tb.find("child-b").unwrap().name, "child-b");
    }
}
