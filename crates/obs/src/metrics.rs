//! Metrics registry: counters, gauges, and fixed-bucket histograms with
//! a Prometheus text-exposition renderer and a small parser for it.
//!
//! All instruments are lock-free on the hot path — counters and
//! histogram buckets are `AtomicU64`s, gauges and histogram sums store
//! `f64` bits in an `AtomicU64` (the sum via a CAS loop). The
//! [`Registry`] hands out `Arc` handles (get-or-create by name) and
//! renders every registered instrument in the [Prometheus text
//! exposition format](https://prometheus.io/docs/instrumenting/exposition_formats/):
//! `# TYPE` comments, `_bucket{le="..."}` cumulative buckets ending at
//! `+Inf`, `_sum` and `_count` series. [`parse_exposition`] inverts the
//! renderer far enough for round-trip tests and scrape assertions.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Monotonically increasing counter. `store` exists for mirrored values
/// (e.g. cache stats kept elsewhere and copied in at scrape time); such
/// mirrors must themselves be monotonic.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Add one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrite with an externally tracked monotonic value.
    pub fn store(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A value that can go up and down; stored as `f64` bits.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Set the gauge.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Fixed-bucket histogram. Bucket `i` counts observations `<= bounds[i]`
/// (non-cumulative internally; the renderer and [`HistogramSnapshot::cumulative`]
/// produce the Prometheus cumulative view); one overflow bucket catches
/// the rest.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_bits: AtomicU64,
}

/// Default latency buckets in seconds: 100µs .. 10s, roughly 1-2.5-5.
pub const LATENCY_BUCKETS_S: [f64; 12] = [
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 10.0,
];

impl Histogram {
    /// Build a histogram over strictly increasing finite `bounds`.
    pub fn new(bounds: &[f64]) -> Histogram {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]) && bounds.iter().all(|b| b.is_finite()),
            "histogram bounds must be strictly increasing and finite"
        );
        Histogram {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// Record one observation.
    pub fn observe(&self, v: f64) {
        let idx = self.bounds.partition_point(|&b| v > b);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let new = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                new,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Consistent-enough point-in-time copy (buckets are read
    /// individually; a scrape racing `observe` may be off by in-flight
    /// observations, never corrupted).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            sum: f64::from_bits(self.sum_bits.load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
        }
    }
}

/// Plain-data copy of a [`Histogram`]; mergeable across shards.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Upper bounds, strictly increasing.
    pub bounds: Vec<f64>,
    /// Per-bucket (non-cumulative) counts; `bounds.len() + 1` entries,
    /// the last is the overflow bucket.
    pub buckets: Vec<u64>,
    /// Sum of all observed values.
    pub sum: f64,
    /// Number of observations.
    pub count: u64,
}

impl HistogramSnapshot {
    /// Fold `other` into `self`. Panics when bucket bounds differ.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        assert_eq!(self.bounds, other.bounds, "merging mismatched histograms");
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.sum += other.sum;
        self.count += other.count;
    }

    /// Cumulative bucket counts the way Prometheus exposes them; the
    /// final entry is the `+Inf` bucket and equals `count`.
    pub fn cumulative(&self) -> Vec<u64> {
        let mut acc = 0;
        self.buckets
            .iter()
            .map(|&b| {
                acc += b;
                acc
            })
            .collect()
    }
}

enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Instrument {
    fn kind(&self) -> &'static str {
        match self {
            Instrument::Counter(_) => "counter",
            Instrument::Gauge(_) => "gauge",
            Instrument::Histogram(_) => "histogram",
        }
    }
}

/// Named instruments with get-or-create registration and text
/// exposition. Handles are `Arc`s: register once, update lock-free.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<Vec<(String, Instrument)>>,
}

impl Registry {
    /// Empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<(String, Instrument)>> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Get or create the counter `name`. Panics if `name` is registered
    /// as a different instrument kind.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut inner = self.lock();
        if let Some((_, i)) = inner.iter().find(|(n, _)| n == name) {
            match i {
                Instrument::Counter(c) => return Arc::clone(c),
                other => panic!("{name} already registered as {}", other.kind()),
            }
        }
        let c = Arc::new(Counter::default());
        inner.push((name.to_string(), Instrument::Counter(Arc::clone(&c))));
        c
    }

    /// Get or create the gauge `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut inner = self.lock();
        if let Some((_, i)) = inner.iter().find(|(n, _)| n == name) {
            match i {
                Instrument::Gauge(g) => return Arc::clone(g),
                other => panic!("{name} already registered as {}", other.kind()),
            }
        }
        let g = Arc::new(Gauge::default());
        inner.push((name.to_string(), Instrument::Gauge(Arc::clone(&g))));
        g
    }

    /// Get or create the histogram `name` over `bounds` (bounds are fixed
    /// at first registration; later calls ignore the argument).
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Arc<Histogram> {
        let mut inner = self.lock();
        if let Some((_, i)) = inner.iter().find(|(n, _)| n == name) {
            match i {
                Instrument::Histogram(h) => return Arc::clone(h),
                other => panic!("{name} already registered as {}", other.kind()),
            }
        }
        let h = Arc::new(Histogram::new(bounds));
        inner.push((name.to_string(), Instrument::Histogram(Arc::clone(&h))));
        h
    }

    /// Render every instrument in Prometheus text exposition format,
    /// sorted by metric name for a stable scrape.
    pub fn render(&self) -> String {
        let inner = self.lock();
        let mut names: Vec<usize> = (0..inner.len()).collect();
        names.sort_by(|&a, &b| inner[a].0.cmp(&inner[b].0));
        let mut out = String::new();
        for i in names {
            let (name, inst) = &inner[i];
            out.push_str(&format!("# TYPE {name} {}\n", inst.kind()));
            match inst {
                Instrument::Counter(c) => out.push_str(&format!("{name} {}\n", c.get())),
                Instrument::Gauge(g) => out.push_str(&format!("{name} {}\n", fmt_f64(g.get()))),
                Instrument::Histogram(h) => {
                    let snap = h.snapshot();
                    let cum = snap.cumulative();
                    for (bound, c) in snap.bounds.iter().zip(&cum) {
                        out.push_str(&format!(
                            "{name}_bucket{{le=\"{}\"}} {c}\n",
                            fmt_f64(*bound)
                        ));
                    }
                    out.push_str(&format!(
                        "{name}_bucket{{le=\"+Inf\"}} {}\n",
                        cum.last().copied().unwrap_or(0)
                    ));
                    out.push_str(&format!("{name}_sum {}\n", fmt_f64(snap.sum)));
                    out.push_str(&format!("{name}_count {}\n", snap.count));
                }
            }
        }
        out
    }
}

/// Shortest round-trippable float text (Rust's default `Display`), with
/// non-finite values in Prometheus spelling.
fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".into()
    } else if v == f64::INFINITY {
        "+Inf".into()
    } else if v == f64::NEG_INFINITY {
        "-Inf".into()
    } else {
        format!("{v}")
    }
}

fn parse_f64(s: &str) -> Result<f64, String> {
    match s {
        "+Inf" => Ok(f64::INFINITY),
        "-Inf" => Ok(f64::NEG_INFINITY),
        "NaN" => Ok(f64::NAN),
        _ => s.parse().map_err(|_| format!("bad float: {s:?}")),
    }
}

/// One sample line of a parsed exposition.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Full series name as written (`foo`, `foo_bucket`, `foo_sum`, ...).
    pub name: String,
    /// The `le` label for histogram buckets, if present.
    pub le: Option<f64>,
    /// Sample value.
    pub value: f64,
}

/// One metric family: a `# TYPE` comment plus its samples.
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    /// Family name from the `# TYPE` line.
    pub name: String,
    /// `counter`, `gauge`, or `histogram`.
    pub kind: String,
    /// Samples in exposition order.
    pub samples: Vec<Sample>,
}

impl Metric {
    /// The value of the plain sample named exactly `name` (counters and
    /// gauges) or of a suffixed series like `foo_count`.
    pub fn value_of(&self, series: &str) -> Option<f64> {
        self.samples
            .iter()
            .find(|s| s.name == series && s.le.is_none())
            .map(|s| s.value)
    }
}

/// Parse the subset of the Prometheus text format that [`Registry::render`]
/// emits: `# TYPE` comments, optional single `le` label, float values.
pub fn parse_exposition(text: &str) -> Result<Vec<Metric>, String> {
    let mut metrics: Vec<Metric> = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let (name, kind) = (
                it.next().ok_or("TYPE line missing name")?,
                it.next().ok_or("TYPE line missing kind")?,
            );
            metrics.push(Metric {
                name: name.to_string(),
                kind: kind.to_string(),
                samples: Vec::new(),
            });
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        let (series, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("bad sample line: {line:?}"))?;
        let value = parse_f64(value.trim())?;
        let (name, le) = match series.split_once('{') {
            None => (series.to_string(), None),
            Some((base, labels)) => {
                let labels = labels
                    .strip_suffix('}')
                    .ok_or_else(|| format!("unterminated labels: {line:?}"))?;
                let le = labels
                    .strip_prefix("le=\"")
                    .and_then(|v| v.strip_suffix('"'))
                    .ok_or_else(|| format!("unsupported labels: {line:?}"))?;
                (base.to_string(), Some(parse_f64(le)?))
            }
        };
        let fam = metrics
            .last_mut()
            .filter(|m| name.starts_with(m.name.as_str()))
            .ok_or_else(|| format!("sample {name:?} outside its TYPE block"))?;
        fam.samples.push(Sample { name, le, value });
    }
    Ok(metrics)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_count_and_sum() {
        let h = Histogram::new(&[0.001, 0.01, 0.1]);
        for v in [0.0005, 0.001, 0.004, 0.05, 7.0] {
            h.observe(v);
        }
        let s = h.snapshot();
        // <=0.001 gets 0.0005 and the exact-boundary 0.001.
        assert_eq!(s.buckets, vec![2, 1, 1, 1]);
        assert_eq!(s.cumulative(), vec![2, 3, 4, 5]);
        assert_eq!(s.count, 5);
        assert!((s.sum - 7.0555).abs() < 1e-12);
    }

    #[test]
    fn histogram_merge_adds_bucketwise() {
        let a = Histogram::new(&[1.0, 2.0]);
        let b = Histogram::new(&[1.0, 2.0]);
        a.observe(0.5);
        a.observe(1.5);
        b.observe(1.5);
        b.observe(9.0);
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.buckets, vec![1, 2, 1]);
        assert_eq!(m.count, 4);
        assert!((m.sum - 12.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "mismatched")]
    fn histogram_merge_rejects_different_bounds() {
        let mut a = Histogram::new(&[1.0]).snapshot();
        a.merge(&Histogram::new(&[2.0]).snapshot());
    }

    #[test]
    fn concurrent_observes_are_not_lost() {
        let h = std::sync::Arc::new(Histogram::new(&[0.5]));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let h = std::sync::Arc::clone(&h);
                s.spawn(move || {
                    for _ in 0..1000 {
                        h.observe(0.25);
                    }
                });
            }
        });
        let snap = h.snapshot();
        assert_eq!(snap.count, 8000);
        assert_eq!(snap.buckets[0], 8000);
        assert!((snap.sum - 2000.0).abs() < 1e-6);
    }

    #[test]
    fn exposition_round_trips_through_the_parser() {
        let reg = Registry::new();
        reg.counter("rain_requests_total").add(42);
        reg.gauge("rain_sessions").set(3.0);
        let h = reg.histogram("rain_request_seconds", &[0.001, 0.01]);
        h.observe(0.0005);
        h.observe(0.5);
        let text = reg.render();
        let metrics = parse_exposition(&text).expect("valid exposition");
        assert_eq!(metrics.len(), 3);

        let req = metrics
            .iter()
            .find(|m| m.name == "rain_requests_total")
            .unwrap();
        assert_eq!(req.kind, "counter");
        assert_eq!(req.value_of("rain_requests_total"), Some(42.0));

        let sess = metrics.iter().find(|m| m.name == "rain_sessions").unwrap();
        assert_eq!(sess.kind, "gauge");
        assert_eq!(sess.value_of("rain_sessions"), Some(3.0));

        let lat = metrics
            .iter()
            .find(|m| m.name == "rain_request_seconds")
            .unwrap();
        assert_eq!(lat.kind, "histogram");
        assert_eq!(lat.value_of("rain_request_seconds_count"), Some(2.0));
        assert_eq!(lat.value_of("rain_request_seconds_sum"), Some(0.5005));
        let buckets: Vec<(f64, f64)> = lat
            .samples
            .iter()
            .filter_map(|s| s.le.map(|le| (le, s.value)))
            .collect();
        assert_eq!(buckets.len(), 3);
        assert_eq!(buckets[0], (0.001, 1.0));
        assert_eq!(buckets[2], (f64::INFINITY, 2.0));
        // Cumulative +Inf bucket equals _count.
        assert_eq!(
            buckets[2].1,
            lat.value_of("rain_request_seconds_count").unwrap()
        );
    }

    #[test]
    fn registry_get_or_create_returns_the_same_instrument() {
        let reg = Registry::new();
        reg.counter("c").inc();
        reg.counter("c").inc();
        assert_eq!(reg.counter("c").get(), 2);
        let h1 = reg.histogram("h", &[1.0]);
        let h2 = reg.histogram("h", &[99.0]); // bounds fixed at first registration
        h1.observe(0.5);
        assert_eq!(h2.snapshot().bounds, vec![1.0]);
        assert_eq!(h2.count(), 1);
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse_exposition("no_type_block 1").is_err());
        assert!(parse_exposition("# TYPE a counter\na notanumber").is_err());
        assert!(parse_exposition("# TYPE a histogram\na_bucket{le=\"0.1\" 3").is_err());
    }
}
