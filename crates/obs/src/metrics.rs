//! Metrics registry: counters, gauges, fixed-bucket histograms, and
//! log-bucketed quantile sketches with a Prometheus text-exposition
//! renderer and a small parser for it.
//!
//! All instruments are lock-free on the hot path — counters and
//! histogram buckets are `AtomicU64`s, gauges and histogram sums store
//! `f64` bits in an `AtomicU64` (the sum via a CAS loop). The
//! [`Registry`] hands out `Arc` handles (get-or-create by name, plus an
//! optional label set so one family can carry per-endpoint series like
//! `rain_http_request_seconds{endpoint="query"}`) and renders every
//! registered instrument in the [Prometheus text exposition
//! format](https://prometheus.io/docs/instrumenting/exposition_formats/):
//! `# TYPE` comments, `_bucket{le="..."}` cumulative buckets ending at
//! `+Inf`, `summary` families with `quantile` labels for sketches, and
//! `_sum`/`_count` series. [`parse_exposition`] inverts the renderer far
//! enough for round-trip tests and scrape assertions.

use crate::sketch::{Sketch, SLO_QUANTILES};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Monotonically increasing counter. `store` exists for mirrored values
/// (e.g. cache stats kept elsewhere and copied in at scrape time); such
/// mirrors must themselves be monotonic.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Add one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrite with an externally tracked monotonic value.
    pub fn store(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A value that can go up and down; stored as `f64` bits.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Set the gauge.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Fixed-bucket histogram. Bucket `i` counts observations `<= bounds[i]`
/// (non-cumulative internally; the renderer and [`HistogramSnapshot::cumulative`]
/// produce the Prometheus cumulative view); one overflow bucket catches
/// the rest.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_bits: AtomicU64,
}

/// Default latency buckets in seconds: 100µs .. 10s, roughly 1-2.5-5.
pub const LATENCY_BUCKETS_S: [f64; 12] = [
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 10.0,
];

impl Histogram {
    /// Build a histogram over strictly increasing finite `bounds`.
    pub fn new(bounds: &[f64]) -> Histogram {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]) && bounds.iter().all(|b| b.is_finite()),
            "histogram bounds must be strictly increasing and finite"
        );
        Histogram {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// Record one observation.
    pub fn observe(&self, v: f64) {
        let idx = self.bounds.partition_point(|&b| v > b);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let new = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                new,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Consistent-enough point-in-time copy (buckets are read
    /// individually; a scrape racing `observe` may be off by in-flight
    /// observations, never corrupted).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            sum: f64::from_bits(self.sum_bits.load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
        }
    }
}

/// Plain-data copy of a [`Histogram`]; mergeable across shards.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Upper bounds, strictly increasing.
    pub bounds: Vec<f64>,
    /// Per-bucket (non-cumulative) counts; `bounds.len() + 1` entries,
    /// the last is the overflow bucket.
    pub buckets: Vec<u64>,
    /// Sum of all observed values.
    pub sum: f64,
    /// Number of observations.
    pub count: u64,
}

impl HistogramSnapshot {
    /// Fold `other` into `self`. Panics when bucket bounds differ.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        assert_eq!(self.bounds, other.bounds, "merging mismatched histograms");
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.sum += other.sum;
        self.count += other.count;
    }

    /// Cumulative bucket counts the way Prometheus exposes them; the
    /// final entry is the `+Inf` bucket and equals `count`.
    pub fn cumulative(&self) -> Vec<u64> {
        let mut acc = 0;
        self.buckets
            .iter()
            .map(|&b| {
                acc += b;
                acc
            })
            .collect()
    }
}

enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
    Sketch(Arc<Sketch>),
}

impl Instrument {
    fn kind(&self) -> &'static str {
        match self {
            Instrument::Counter(_) => "counter",
            Instrument::Gauge(_) => "gauge",
            Instrument::Histogram(_) => "histogram",
            Instrument::Sketch(_) => "summary",
        }
    }
}

struct Entry {
    name: String,
    labels: Vec<(String, String)>,
    inst: Instrument,
}

/// Named instruments with get-or-create registration and text
/// exposition. Handles are `Arc`s: register once, update lock-free.
/// An entry is keyed by `(name, labels)`; all entries of one name form
/// a family and must share an instrument kind.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<Vec<Entry>>,
}

fn fmt_labels(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut pairs: Vec<String> = labels.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
    if let Some((k, v)) = extra {
        pairs.push(format!("{k}=\"{v}\""));
    }
    if pairs.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", pairs.join(","))
    }
}

impl Registry {
    /// Empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<Entry>> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Get-or-create: find `(name, labels)`, checking the family kind, or
    /// insert with `make`.
    fn entry<T>(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        kind: &'static str,
        get: impl Fn(&Instrument) -> Option<Arc<T>>,
        make: impl FnOnce() -> (Arc<T>, Instrument),
    ) -> Arc<T> {
        let mut inner = self.lock();
        for e in inner.iter() {
            if e.name != name {
                continue;
            }
            if e.inst.kind() != kind {
                panic!("{name} already registered as {}", e.inst.kind());
            }
            if e.labels.len() == labels.len()
                && e.labels
                    .iter()
                    .zip(labels)
                    .all(|((k, v), (lk, lv))| k == lk && v == lv)
            {
                return get(&e.inst).expect("kind checked above");
            }
        }
        let (handle, inst) = make();
        inner.push(Entry {
            name: name.to_string(),
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            inst,
        });
        handle
    }

    /// Get or create the counter `name`. Panics if `name` is registered
    /// as a different instrument kind.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.entry(
            name,
            &[],
            "counter",
            |i| match i {
                Instrument::Counter(c) => Some(Arc::clone(c)),
                _ => None,
            },
            || {
                let c = Arc::new(Counter::default());
                (Arc::clone(&c), Instrument::Counter(c))
            },
        )
    }

    /// Get or create the gauge `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.entry(
            name,
            &[],
            "gauge",
            |i| match i {
                Instrument::Gauge(g) => Some(Arc::clone(g)),
                _ => None,
            },
            || {
                let g = Arc::new(Gauge::default());
                (Arc::clone(&g), Instrument::Gauge(g))
            },
        )
    }

    /// Get or create the histogram `name` over `bounds` (bounds are fixed
    /// at first registration; later calls ignore the argument).
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Arc<Histogram> {
        self.entry(
            name,
            &[],
            "histogram",
            |i| match i {
                Instrument::Histogram(h) => Some(Arc::clone(h)),
                _ => None,
            },
            || {
                let h = Arc::new(Histogram::new(bounds));
                (Arc::clone(&h), Instrument::Histogram(h))
            },
        )
    }

    /// Get or create the (unlabeled) quantile sketch `name`, exposed as a
    /// Prometheus `summary` with `quantile` labels.
    pub fn sketch(&self, name: &str) -> Arc<Sketch> {
        self.sketch_with(name, &[])
    }

    /// Get or create the sketch `name` carrying a fixed label set — e.g.
    /// `sketch_with("rain_http_request_seconds", &[("endpoint", "query")])`
    /// for per-endpoint SLO series under one family.
    pub fn sketch_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Sketch> {
        self.entry(
            name,
            labels,
            "summary",
            |i| match i {
                Instrument::Sketch(s) => Some(Arc::clone(s)),
                _ => None,
            },
            || {
                let s = Arc::new(Sketch::new());
                (Arc::clone(&s), Instrument::Sketch(s))
            },
        )
    }

    /// Render every instrument in Prometheus text exposition format,
    /// sorted by metric name (then labels) for a stable scrape; one
    /// `# TYPE` line per family.
    pub fn render(&self) -> String {
        let inner = self.lock();
        let mut order: Vec<usize> = (0..inner.len()).collect();
        order.sort_by(|&a, &b| {
            (&inner[a].name, &inner[a].labels).cmp(&(&inner[b].name, &inner[b].labels))
        });
        let mut out = String::new();
        let mut last_family: Option<&str> = None;
        for i in order {
            let Entry { name, labels, inst } = &inner[i];
            if last_family != Some(name.as_str()) {
                out.push_str(&format!("# TYPE {name} {}\n", inst.kind()));
                last_family = Some(name.as_str());
            }
            let lbl = fmt_labels(labels, None);
            match inst {
                Instrument::Counter(c) => out.push_str(&format!("{name}{lbl} {}\n", c.get())),
                Instrument::Gauge(g) => {
                    out.push_str(&format!("{name}{lbl} {}\n", fmt_f64(g.get())))
                }
                Instrument::Histogram(h) => {
                    let snap = h.snapshot();
                    let cum = snap.cumulative();
                    for (bound, c) in snap.bounds.iter().zip(&cum) {
                        let l = fmt_labels(labels, Some(("le", &fmt_f64(*bound))));
                        out.push_str(&format!("{name}_bucket{l} {c}\n"));
                    }
                    let l = fmt_labels(labels, Some(("le", "+Inf")));
                    out.push_str(&format!(
                        "{name}_bucket{l} {}\n",
                        cum.last().copied().unwrap_or(0)
                    ));
                    out.push_str(&format!("{name}_sum{lbl} {}\n", fmt_f64(snap.sum)));
                    out.push_str(&format!("{name}_count{lbl} {}\n", snap.count));
                }
                Instrument::Sketch(s) => {
                    let snap = s.snapshot();
                    for q in SLO_QUANTILES {
                        let l = fmt_labels(labels, Some(("quantile", &fmt_f64(q))));
                        out.push_str(&format!("{name}{l} {}\n", fmt_f64(snap.quantile(q))));
                    }
                    out.push_str(&format!("{name}_sum{lbl} {}\n", fmt_f64(snap.sum)));
                    out.push_str(&format!("{name}_count{lbl} {}\n", snap.count));
                }
            }
        }
        out
    }
}

/// Shortest round-trippable float text (Rust's default `Display`), with
/// non-finite values in Prometheus spelling.
fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".into()
    } else if v == f64::INFINITY {
        "+Inf".into()
    } else if v == f64::NEG_INFINITY {
        "-Inf".into()
    } else {
        format!("{v}")
    }
}

fn parse_f64(s: &str) -> Result<f64, String> {
    match s {
        "+Inf" => Ok(f64::INFINITY),
        "-Inf" => Ok(f64::NEG_INFINITY),
        "NaN" => Ok(f64::NAN),
        _ => s.parse().map_err(|_| format!("bad float: {s:?}")),
    }
}

/// One sample line of a parsed exposition.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Full series name as written (`foo`, `foo_bucket`, `foo_sum`, ...).
    pub name: String,
    /// All labels, in written order (`le` and `quantile` included).
    pub labels: Vec<(String, String)>,
    /// The `le` label for histogram buckets, parsed, if present.
    pub le: Option<f64>,
    /// Sample value.
    pub value: f64,
}

impl Sample {
    /// Value of label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// The `quantile` label of a summary sample, parsed.
    pub fn quantile(&self) -> Option<f64> {
        self.label("quantile").and_then(|v| parse_f64(v).ok())
    }
}

/// One metric family: a `# TYPE` comment plus its samples.
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    /// Family name from the `# TYPE` line.
    pub name: String,
    /// `counter`, `gauge`, `histogram`, or `summary`.
    pub kind: String,
    /// Samples in exposition order.
    pub samples: Vec<Sample>,
}

impl Metric {
    /// The value of the unlabeled sample named exactly `name` (counters
    /// and gauges) or of a suffixed series like `foo_count`.
    pub fn value_of(&self, series: &str) -> Option<f64> {
        self.samples
            .iter()
            .find(|s| s.name == series && s.labels.is_empty())
            .map(|s| s.value)
    }

    /// The value of the sample named `series` carrying every label in
    /// `labels` (other labels, e.g. `quantile`, may also be present).
    pub fn value_with(&self, series: &str, labels: &[(&str, &str)]) -> Option<f64> {
        self.samples
            .iter()
            .find(|s| s.name == series && labels.iter().all(|(k, v)| s.label(k) == Some(v)))
            .map(|s| s.value)
    }
}

fn parse_labels(text: &str, line: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut rest = text;
    while !rest.is_empty() {
        let (key, after) = rest
            .split_once("=\"")
            .ok_or_else(|| format!("bad label in: {line:?}"))?;
        let (value, after) = after
            .split_once('"')
            .ok_or_else(|| format!("unterminated label value in: {line:?}"))?;
        labels.push((key.to_string(), value.to_string()));
        rest = after.strip_prefix(',').unwrap_or(after);
        if rest == after && !rest.is_empty() {
            return Err(format!("bad label separator in: {line:?}"));
        }
    }
    Ok(labels)
}

/// Parse the subset of the Prometheus text format that [`Registry::render`]
/// emits: `# TYPE` comments, comma-separated `key="value"` labels, float
/// values (`le` additionally parsed as a float).
pub fn parse_exposition(text: &str) -> Result<Vec<Metric>, String> {
    let mut metrics: Vec<Metric> = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let (name, kind) = (
                it.next().ok_or("TYPE line missing name")?,
                it.next().ok_or("TYPE line missing kind")?,
            );
            metrics.push(Metric {
                name: name.to_string(),
                kind: kind.to_string(),
                samples: Vec::new(),
            });
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        let (series, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("bad sample line: {line:?}"))?;
        let value = parse_f64(value.trim())?;
        let (name, labels) = match series.split_once('{') {
            None => (series.to_string(), Vec::new()),
            Some((base, labels)) => {
                let labels = labels
                    .strip_suffix('}')
                    .ok_or_else(|| format!("unterminated labels: {line:?}"))?;
                (base.to_string(), parse_labels(labels, line)?)
            }
        };
        let le = labels
            .iter()
            .find(|(k, _)| k == "le")
            .map(|(_, v)| parse_f64(v))
            .transpose()?;
        let fam = metrics
            .last_mut()
            .filter(|m| name.starts_with(m.name.as_str()))
            .ok_or_else(|| format!("sample {name:?} outside its TYPE block"))?;
        fam.samples.push(Sample {
            name,
            labels,
            le,
            value,
        });
    }
    Ok(metrics)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_count_and_sum() {
        let h = Histogram::new(&[0.001, 0.01, 0.1]);
        for v in [0.0005, 0.001, 0.004, 0.05, 7.0] {
            h.observe(v);
        }
        let s = h.snapshot();
        // <=0.001 gets 0.0005 and the exact-boundary 0.001.
        assert_eq!(s.buckets, vec![2, 1, 1, 1]);
        assert_eq!(s.cumulative(), vec![2, 3, 4, 5]);
        assert_eq!(s.count, 5);
        assert!((s.sum - 7.0555).abs() < 1e-12);
    }

    #[test]
    fn histogram_merge_adds_bucketwise() {
        let a = Histogram::new(&[1.0, 2.0]);
        let b = Histogram::new(&[1.0, 2.0]);
        a.observe(0.5);
        a.observe(1.5);
        b.observe(1.5);
        b.observe(9.0);
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.buckets, vec![1, 2, 1]);
        assert_eq!(m.count, 4);
        assert!((m.sum - 12.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "mismatched")]
    fn histogram_merge_rejects_different_bounds() {
        let mut a = Histogram::new(&[1.0]).snapshot();
        a.merge(&Histogram::new(&[2.0]).snapshot());
    }

    #[test]
    fn concurrent_observes_are_not_lost() {
        let h = std::sync::Arc::new(Histogram::new(&[0.5]));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let h = std::sync::Arc::clone(&h);
                s.spawn(move || {
                    for _ in 0..1000 {
                        h.observe(0.25);
                    }
                });
            }
        });
        let snap = h.snapshot();
        assert_eq!(snap.count, 8000);
        assert_eq!(snap.buckets[0], 8000);
        assert!((snap.sum - 2000.0).abs() < 1e-6);
    }

    #[test]
    fn exposition_round_trips_through_the_parser() {
        let reg = Registry::new();
        reg.counter("rain_requests_total").add(42);
        reg.gauge("rain_sessions").set(3.0);
        let h = reg.histogram("rain_request_seconds", &[0.001, 0.01]);
        h.observe(0.0005);
        h.observe(0.5);
        let text = reg.render();
        let metrics = parse_exposition(&text).expect("valid exposition");
        assert_eq!(metrics.len(), 3);

        let req = metrics
            .iter()
            .find(|m| m.name == "rain_requests_total")
            .unwrap();
        assert_eq!(req.kind, "counter");
        assert_eq!(req.value_of("rain_requests_total"), Some(42.0));

        let sess = metrics.iter().find(|m| m.name == "rain_sessions").unwrap();
        assert_eq!(sess.kind, "gauge");
        assert_eq!(sess.value_of("rain_sessions"), Some(3.0));

        let lat = metrics
            .iter()
            .find(|m| m.name == "rain_request_seconds")
            .unwrap();
        assert_eq!(lat.kind, "histogram");
        assert_eq!(lat.value_of("rain_request_seconds_count"), Some(2.0));
        assert_eq!(lat.value_of("rain_request_seconds_sum"), Some(0.5005));
        let buckets: Vec<(f64, f64)> = lat
            .samples
            .iter()
            .filter_map(|s| s.le.map(|le| (le, s.value)))
            .collect();
        assert_eq!(buckets.len(), 3);
        assert_eq!(buckets[0], (0.001, 1.0));
        assert_eq!(buckets[2], (f64::INFINITY, 2.0));
        // Cumulative +Inf bucket equals _count.
        assert_eq!(
            buckets[2].1,
            lat.value_of("rain_request_seconds_count").unwrap()
        );
    }

    #[test]
    fn registry_get_or_create_returns_the_same_instrument() {
        let reg = Registry::new();
        reg.counter("c").inc();
        reg.counter("c").inc();
        assert_eq!(reg.counter("c").get(), 2);
        let h1 = reg.histogram("h", &[1.0]);
        let h2 = reg.histogram("h", &[99.0]); // bounds fixed at first registration
        h1.observe(0.5);
        assert_eq!(h2.snapshot().bounds, vec![1.0]);
        assert_eq!(h2.count(), 1);
    }

    #[test]
    fn sketch_summaries_round_trip_with_labels() {
        let reg = Registry::new();
        let q = reg.sketch_with("rain_http_request_seconds", &[("endpoint", "query")]);
        let d = reg.sketch_with("rain_http_request_seconds", &[("endpoint", "debug_run")]);
        for _ in 0..100 {
            q.observe(0.002);
        }
        q.observe(1.0);
        d.observe(0.5);
        let text = reg.render();
        let metrics = parse_exposition(&text).expect("valid exposition");
        let fam = metrics
            .iter()
            .find(|m| m.name == "rain_http_request_seconds")
            .unwrap();
        assert_eq!(fam.kind, "summary");
        // One # TYPE line for the whole family.
        assert_eq!(text.matches("# TYPE rain_http_request_seconds").count(), 1);
        assert_eq!(
            fam.value_with("rain_http_request_seconds_count", &[("endpoint", "query")]),
            Some(101.0)
        );
        assert_eq!(
            fam.value_with(
                "rain_http_request_seconds_count",
                &[("endpoint", "debug_run")]
            ),
            Some(1.0)
        );
        let p50 = fam
            .samples
            .iter()
            .find(|s| {
                s.name == "rain_http_request_seconds"
                    && s.label("endpoint") == Some("query")
                    && s.quantile() == Some(0.5)
            })
            .expect("p50 sample");
        assert!(
            (p50.value - 0.002).abs() / 0.002 < 0.05,
            "p50={}",
            p50.value
        );
        let p999 = fam
            .value_with(
                "rain_http_request_seconds",
                &[("endpoint", "query"), ("quantile", "0.999")],
            )
            .expect("p999 sample");
        assert!((p999 - 1.0).abs() < 0.05, "p999={p999}");
        // Same-name different-kind registration still panics.
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            reg.counter("rain_http_request_seconds")
        }));
        assert!(r.is_err());
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse_exposition("no_type_block 1").is_err());
        assert!(parse_exposition("# TYPE a counter\na notanumber").is_err());
        assert!(parse_exposition("# TYPE a histogram\na_bucket{le=\"0.1\" 3").is_err());
    }
}
